// Wire protocol, tenant QoS, and front-door end-to-end tests
// (docs/NET.md). The protocol sections are pure unit tests; the E2E
// sections stand up a real FrontDoor over unix/TCP sockets and drive it
// with net::Client.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "faults/faults.hpp"
#include "gpusim/device.hpp"
#include "net/chaos_proxy.hpp"
#include "net/client.hpp"
#include "net/dedup.hpp"
#include "net/front_door.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "net/tenant.hpp"
#include "service/solve_service.hpp"

using namespace tda;
using namespace tda::net;

namespace {

std::string unique_sock(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/tda_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

struct System {
  std::vector<double> a, b, c, d;
};

System diag_dominant(std::size_t n, unsigned seed) {
  System s;
  s.a.resize(n);
  s.b.resize(n);
  s.c.resize(n);
  s.d.resize(n);
  std::uint64_t state = seed * 2654435761u + 1;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 33) & 0xFFFF) / 65535.0 - 0.5;
  };
  for (std::size_t i = 0; i < n; ++i) {
    s.a[i] = (i == 0) ? 0.0 : next();
    s.c[i] = (i == n - 1) ? 0.0 : next();
    s.b[i] = (std::abs(s.a[i]) + std::abs(s.c[i])) * 2.0 + 0.5;
    s.d[i] = next();
  }
  return s;
}

double residual(const System& s, const std::vector<double>& x) {
  double worst = 0.0;
  const std::size_t n = s.b.size();
  if (x.size() != n) return 1e30;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = s.b[i] * x[i] - s.d[i];
    if (i > 0) acc += s.a[i] * x[i - 1];
    if (i + 1 < n) acc += s.c[i] * x[i + 1];
    worst = std::max(worst, std::abs(acc));
  }
  return worst;
}

/// Reads raw frames off a socket fd — for tests that emulate a legacy
/// (pre-net::Client) peer byte-for-byte.
bool read_frame(int fd, std::string& buf, FrameType& type,
                std::string& payload, std::uint16_t* version = nullptr) {
  char tmp[4096];
  for (;;) {
    const auto r = decode_frame(buf, 1 << 20);
    if (r.status == DecodeStatus::Ok) {
      type = r.frame.type;
      payload.assign(r.frame.payload);
      if (version != nullptr) *version = r.frame.version;
      buf.erase(0, r.consumed);
      return true;
    }
    if (r.status == DecodeStatus::Corrupt) return false;
    const long n = read_some(fd, tmp, sizeof(tmp));
    if (n <= 0 && n != -2) return false;
    if (n > 0) buf.append(tmp, static_cast<std::size_t>(n));
  }
}

/// A service + front door on a unix socket with two tenants
/// ("alpha"/"beta", tokens "ta"/"tb").
struct DoorFixture {
  explicit DoorFixture(FrontDoorConfig fcfg = {},
                       service::ServiceConfig scfg = {}) {
    scfg.flush_systems = 8;
    scfg.flush_interval_ms = 0.5;
    svc = std::make_unique<service::SolveService<double>>(
        std::vector<gpusim::DeviceSpec>{gpusim::device_registry().back()},
        scfg);
    svc->telemetry().metrics.enable();
    svc->telemetry().tracer.enable();
    sock = unique_sock("door");
    fcfg.unix_path = sock;
    fcfg.poll_interval_ms = 2.0;
    door = std::make_unique<FrontDoor<double>>(*svc, fcfg);
    TenantConfig a;
    a.name = "alpha";
    a.token = "ta";
    a.weight = 2.0;
    door->add_tenant(a);
    TenantConfig b;
    b.name = "beta";
    b.token = "tb";
    door->add_tenant(b);
  }

  ~DoorFixture() {
    door->shutdown();
    svc->shutdown();
  }

  bool start() {
    std::string err;
    const bool ok = door->start(&err);
    EXPECT_TRUE(ok) << err;
    return ok;
  }

  std::string sock;
  std::unique_ptr<service::SolveService<double>> svc;
  std::unique_ptr<FrontDoor<double>> door;
};

}  // namespace

// ---------------------------------------------------------------- protocol

TEST(NetProtocol, ChecksumChangesOnAnyByteFlip) {
  std::string frame;
  encode_hello(frame, "secret-token");
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string mutated = frame;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    const auto r = decode_frame(mutated, 1 << 20);
    EXPECT_NE(r.status, DecodeStatus::Ok) << "flip at byte " << i;
  }
}

TEST(NetProtocol, HelloRoundTrip) {
  std::string buf;
  encode_hello(buf, "tok-123");
  const auto r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  EXPECT_EQ(r.consumed, buf.size());
  EXPECT_EQ(r.frame.type, FrameType::Hello);
  const auto hello = parse_hello(r.frame.payload);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->token, "tok-123");
}

TEST(NetProtocol, HelloOkAndGoodbyeRoundTrip) {
  std::string buf;
  encode_hello_ok(buf, "tenant-x");
  encode_goodbye(buf);
  auto r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  EXPECT_EQ(r.frame.type, FrameType::HelloOk);
  const auto ok = parse_hello_ok(r.frame.payload);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->tenant, "tenant-x");
  buf.erase(0, r.consumed);
  r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  EXPECT_EQ(r.frame.type, FrameType::Goodbye);
  EXPECT_TRUE(r.frame.payload.empty());
}

TEST(NetProtocol, SolveErrRoundTrip) {
  std::string buf;
  encode_solve_err(buf, 77, ErrorCode::QuotaRate, "slow down");
  const auto r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  EXPECT_EQ(r.frame.request_id, 77u);
  const auto e = parse_solve_err(r.frame.payload);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->code, ErrorCode::QuotaRate);
  EXPECT_EQ(e->message, "slow down");
}

template <typename T>
void solve_round_trip() {
  const std::vector<T> a{0, 1, 2, 3}, b{5, 6, 7, 8}, c{1, 2, 3, 0},
      d{4, 3, 2, 1};
  std::string buf;
  encode_solve<T>(buf, 42, a, b, c, d, 12.5);
  const auto r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  EXPECT_EQ(r.frame.type, FrameType::Solve);
  EXPECT_EQ(r.frame.request_id, 42u);
  EXPECT_EQ(solve_dtype(r.frame.payload), sizeof(T));
  const auto f = parse_solve<T>(r.frame.payload);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->n, 4u);
  EXPECT_DOUBLE_EQ(f->deadline_ms, 12.5);
  EXPECT_EQ(f->a, a);
  EXPECT_EQ(f->b, b);
  EXPECT_EQ(f->c, c);
  EXPECT_EQ(f->d, d);
}

TEST(NetProtocol, SolveRoundTripF32) { solve_round_trip<float>(); }
TEST(NetProtocol, SolveRoundTripF64) { solve_round_trip<double>(); }

template <typename T>
void solve_ok_round_trip() {
  const std::vector<T> x{1, 2, 3};
  std::string buf;
  encode_solve_ok<T>(buf, 9, x, 0xABCD, 1.5, 0.25, true);
  const auto r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  const auto f = parse_solve_ok<T>(r.frame.payload);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->x, x);
  EXPECT_EQ(f->trace_id, 0xABCDu);
  EXPECT_DOUBLE_EQ(f->solve_ms, 1.5);
  EXPECT_DOUBLE_EQ(f->wait_ms, 0.25);
  EXPECT_TRUE(f->fallback_used);
}

TEST(NetProtocol, SolveOkRoundTripF32) { solve_ok_round_trip<float>(); }
TEST(NetProtocol, SolveOkRoundTripF64) { solve_ok_round_trip<double>(); }

TEST(NetProtocol, EveryPrefixNeedsMore) {
  std::string buf;
  encode_solve<double>(buf, 1, {0, 1}, {3, 3}, {1, 0}, {1, 1}, 0.0);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    const auto r = decode_frame(std::string_view(buf).substr(0, len),
                                1 << 20);
    EXPECT_EQ(r.status, DecodeStatus::NeedMore) << "prefix " << len;
  }
  EXPECT_EQ(decode_frame(buf, 1 << 20).status, DecodeStatus::Ok);
}

TEST(NetProtocol, BadMagicRejectsEarly) {
  // Garbage is rejected as soon as 4 bytes arrive — it cannot pin
  // buffer space pretending to be a frame prefix.
  const auto r = decode_frame(std::string("junk"), 1 << 20);
  EXPECT_EQ(r.status, DecodeStatus::Corrupt);
}

TEST(NetProtocol, CorruptHeaderVariants) {
  std::string good;
  encode_hello(good, "t");

  std::string bad = good;
  bad[4] = 9;  // version
  EXPECT_EQ(decode_frame(bad, 1 << 20).status, DecodeStatus::Corrupt);

  bad = good;
  bad[6] = 99;  // frame type
  EXPECT_EQ(decode_frame(bad, 1 << 20).status, DecodeStatus::Corrupt);

  bad = good;
  bad[20] = static_cast<char>(bad[20] ^ 1);  // checksum
  EXPECT_EQ(decode_frame(bad, 1 << 20).status, DecodeStatus::Corrupt);
}

TEST(NetProtocol, OversizedPayloadLenIsCorruptNotNeedMore) {
  std::string good;
  encode_hello(good, "t");
  // Rewrite payload_len to something absurd; checksum no longer matters
  // because the length check fires first.
  good[16] = static_cast<char>(0xFF);
  good[17] = static_cast<char>(0xFF);
  good[18] = static_cast<char>(0xFF);
  good[19] = static_cast<char>(0x7F);
  const auto r = decode_frame(good, 1 << 20);
  EXPECT_EQ(r.status, DecodeStatus::Corrupt);
}

TEST(NetProtocol, ParseSolveShapeViolations) {
  std::string buf;
  encode_solve<double>(buf, 1, {0, 1}, {3, 3}, {1, 0}, {1, 1}, 0.0);
  const auto r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  const std::string payload(r.frame.payload);

  // Wrong dtype for the parser's T.
  EXPECT_FALSE(parse_solve<float>(payload).has_value());
  // Truncated and padded payloads: exact-size check refuses both.
  EXPECT_FALSE(
      parse_solve<double>(std::string_view(payload).substr(0, payload.size() - 1))
          .has_value());
  EXPECT_FALSE(parse_solve<double>(payload + "x").has_value());
  // n = 0.
  std::string zero = payload;
  zero[4] = zero[5] = zero[6] = zero[7] = 0;
  EXPECT_FALSE(
      parse_solve<double>(std::string_view(zero).substr(0, 16)).has_value());
}

// ---------------------------------------------------------------- sockets

TEST(NetSocket, ParseEndpointCases) {
  auto ep = parse_endpoint("127.0.0.1:8080");
  ASSERT_TRUE(ep.has_value());
  EXPECT_FALSE(ep->is_unix);
  EXPECT_EQ(ep->host, "127.0.0.1");
  EXPECT_EQ(ep->port, 8080);

  ep = parse_endpoint("localhost:0");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->port, 0);

  ep = parse_endpoint("unix:/tmp/x.sock");
  ASSERT_TRUE(ep.has_value());
  EXPECT_TRUE(ep->is_unix);
  EXPECT_EQ(ep->path, "/tmp/x.sock");

  EXPECT_FALSE(parse_endpoint("").has_value());
  EXPECT_FALSE(parse_endpoint("noport").has_value());
  EXPECT_FALSE(parse_endpoint("host:").has_value());
  EXPECT_FALSE(parse_endpoint("host:abc").has_value());
  EXPECT_FALSE(parse_endpoint("host:70000").has_value());
  EXPECT_FALSE(parse_endpoint("unix:").has_value());
}

// ---------------------------------------------------------------- tenants

TEST(NetTenant, TokenBucketDeterministic) {
  TokenBucket b(2.0, 2.0);  // 2/s, burst 2
  EXPECT_TRUE(b.try_take(0.0));
  EXPECT_TRUE(b.try_take(0.0));
  EXPECT_FALSE(b.try_take(0.0));
  EXPECT_FALSE(b.try_take(0.4));   // 0.8 tokens accrued
  EXPECT_TRUE(b.try_take(0.5));    // 1.0 accrued
  EXPECT_FALSE(b.try_take(0.5));
  TokenBucket unlimited(0.0, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.try_take(0.0));
}

TEST(NetTenant, RegistryAuthAndQuotas) {
  TenantRegistry reg;
  TenantConfig cfg;
  cfg.name = "t";
  cfg.token = "tok";
  cfg.max_inflight = 2;
  cfg.max_inflight_bytes = 1000;
  cfg.requests_per_sec = 1.0;
  cfg.burst = 10.0;
  reg.add(cfg);

  EXPECT_EQ(reg.authenticate("wrong"), nullptr);
  Tenant* t = reg.authenticate("tok");
  ASSERT_NE(t, nullptr);

  EXPECT_EQ(reg.admit(*t, 1, 100, 0.0), Admission::Ok);
  EXPECT_EQ(reg.admit(*t, 1, 100, 0.0), Admission::Ok);
  EXPECT_EQ(reg.admit(*t, 1, 100, 0.0), Admission::QuotaInflight);
  reg.release(*t, 1, 100);
  // All-or-nothing: the bytes check fires before any charge.
  EXPECT_EQ(reg.admit(*t, 1, 950, 0.0), Admission::QuotaBytes);
  EXPECT_EQ(t->inflight_systems, 1u);
  EXPECT_EQ(reg.admit(*t, 1, 100, 0.0), Admission::Ok);
  reg.release(*t, 2, 200);

  // Burn the rate bucket: three successful admissions above consumed
  // three of the burst-10 tokens (rejections charge nothing), so seven
  // remain.
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(reg.admit(*t, 1, 1, 0.0), Admission::Ok) << i;
    reg.release(*t, 1, 1);
  }
  EXPECT_EQ(reg.admit(*t, 1, 1, 0.0), Admission::QuotaRate);

  const auto usage = reg.usage();
  ASSERT_EQ(usage.size(), 1u);
  EXPECT_EQ(usage[0].name, "t");
  EXPECT_GT(usage[0].rejected, 0u);
}

TEST(NetTenant, DrrWeightedFairness) {
  TenantRegistry reg;
  TenantConfig a;
  a.name = "heavy";
  a.token = "a";
  a.weight = 2.0;
  reg.add(a);
  TenantConfig b;
  b.name = "light";
  b.token = "b";
  b.weight = 1.0;
  reg.add(b);
  Tenant* ta = reg.authenticate("a");
  Tenant* tb = reg.authenticate("b");

  DrrScheduler<int> sched(1.0);
  for (int i = 0; i < 30; ++i) {
    sched.enqueue(ta, 1, 1.0);
    sched.enqueue(tb, 2, 1.0);
  }
  // With equal unit costs and weights 2:1 the service order must give
  // the heavy tenant exactly twice the slots in every window.
  int heavy = 0, light = 0;
  int item = 0;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(sched.dequeue(item));
    (item == 1 ? heavy : light) += 1;
  }
  EXPECT_EQ(heavy, 20);
  EXPECT_EQ(light, 10);
}

TEST(NetTenant, DrrExpensiveHeadAccumulatesNotUnderpays) {
  TenantRegistry reg;
  TenantConfig a;
  a.name = "big";
  a.token = "a";
  reg.add(a);
  TenantConfig b;
  b.name = "small";
  b.token = "b";
  reg.add(b);
  Tenant* ta = reg.authenticate("a");
  Tenant* tb = reg.authenticate("b");

  DrrScheduler<int> sched(1.0);
  sched.enqueue(ta, 100, 10.0);  // one expensive item
  for (int i = 0; i < 15; ++i) sched.enqueue(tb, 1, 1.0);

  // The cost-10 head must wait ~10 sweeps while the unit-cost lane keeps
  // flowing — per-equation fairness, not per-item.
  int item = 0;
  int before_big = 0;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(sched.dequeue(item));
    if (item == 100) break;
    ++before_big;
  }
  EXPECT_GE(before_big, 8);
  EXPECT_LE(before_big, 12);
}

TEST(NetTenant, DrrDropIf) {
  TenantRegistry reg;
  TenantConfig a;
  a.name = "t";
  a.token = "a";
  reg.add(a);
  Tenant* ta = reg.authenticate("a");

  DrrScheduler<int> sched(4.0);
  for (int i = 0; i < 10; ++i) sched.enqueue(ta, i, 1.0);
  int dropped = 0;
  sched.drop_if([](int v) { return v % 2 == 0; },
                [&dropped](int) { ++dropped; });
  EXPECT_EQ(dropped, 5);
  EXPECT_EQ(sched.size(), 5u);
  int item = 0;
  int served = 0;
  while (sched.dequeue(item)) {
    EXPECT_EQ(item % 2, 1);
    ++served;
  }
  EXPECT_EQ(served, 5);
}

// ------------------------------------------------------------------- E2E

TEST(NetDoor, UnixSolveRoundTripWithTenantLabels) {
  DoorFixture fx;
  ASSERT_TRUE(fx.start());

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect("unix:" + fx.sock, "ta", &err)) << err;
  EXPECT_EQ(client.tenant(), "alpha");

  for (const std::size_t n : {33u, 64u, 200u}) {
    const auto sys = diag_dominant(n, static_cast<unsigned>(n));
    const auto r = client.solve<double>(sys.a, sys.b, sys.c, sys.d);
    ASSERT_TRUE(r.ok()) << to_string(r.code) << " " << r.error;
    EXPECT_LT(residual(sys, r.x), 1e-8);
    EXPECT_NE(r.trace_id, 0u);
  }
  client.close();

  // The tenant label must show up on the latency histogram and the
  // front-door request counter.
  std::uint64_t labeled_count = 0;
  for (const auto& [name, snap] : fx.svc->telemetry().metrics.latencies()) {
    if (name.find("service.request_latency_ms{") == 0 &&
        name.find("tenant=\"alpha\"") != std::string::npos) {
      labeled_count += snap.count;  // keys split by shape bucket
    }
  }
  EXPECT_GE(labeled_count, 3u);
  EXPECT_GE(fx.svc->telemetry().metrics.counter(
                telemetry::labeled("net.requests", {{"tenant", "alpha"}})),
            3.0);

  const auto c = fx.door->counters();
  EXPECT_EQ(c.connections, 1u);
  EXPECT_GE(c.frames_rx, 4u);  // hello + 3 solves (+ goodbye)
  EXPECT_GE(c.responses_sent, 3u);
  EXPECT_EQ(c.bad_frames, 0u);
}

TEST(NetDoor, TcpSolveRoundTrip) {
  FrontDoorConfig fcfg;
  fcfg.tcp = "127.0.0.1:0";
  DoorFixture fx(fcfg);
  ASSERT_TRUE(fx.start());
  ASSERT_NE(fx.door->tcp_port(), 0);

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect(
      "127.0.0.1:" + std::to_string(fx.door->tcp_port()), "tb", &err))
      << err;
  EXPECT_EQ(client.tenant(), "beta");
  const auto sys = diag_dominant(128, 7);
  const auto r = client.solve<double>(sys.a, sys.b, sys.c, sys.d);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_LT(residual(sys, r.x), 1e-8);
}

TEST(NetDoor, AuthFailedAndAuthRequired) {
  DoorFixture fx;
  ASSERT_TRUE(fx.start());

  Client bad;
  std::string err;
  EXPECT_FALSE(bad.connect("unix:" + fx.sock, "nope", &err));
  EXPECT_NE(err.find("auth"), std::string::npos) << err;

  // No Hello at all: the Solve is refused with AuthRequired.
  Client anon;
  ASSERT_TRUE(anon.connect("unix:" + fx.sock, "", &err)) << err;
  const auto sys = diag_dominant(32, 1);
  const auto r = anon.solve<double>(sys.a, sys.b, sys.c, sys.d);
  EXPECT_EQ(r.code, ErrorCode::AuthRequired);
}

TEST(NetDoor, NoAuthModeAdmitsAnonymous) {
  FrontDoorConfig fcfg;
  fcfg.require_auth = false;
  DoorFixture fx(fcfg);
  ASSERT_TRUE(fx.start());

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect("unix:" + fx.sock, "", &err)) << err;
  const auto sys = diag_dominant(64, 3);
  const auto r = client.solve<double>(sys.a, sys.b, sys.c, sys.d);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_LT(residual(sys, r.x), 1e-8);
}

TEST(NetDoor, DtypeMismatchRejected) {
  DoorFixture fx;  // server is instantiated for double
  ASSERT_TRUE(fx.start());
  Client client;
  std::string err;
  ASSERT_TRUE(client.connect("unix:" + fx.sock, "ta", &err)) << err;
  const std::vector<float> v{1, 2, 3, 4};
  ASSERT_TRUE(client.send_solve<float>(1, v, v, v, v, 0.0, &err)) << err;
  WireResult<float> r;
  ASSERT_TRUE(client.recv_result<float>(r, &err)) << err;
  EXPECT_EQ(r.code, ErrorCode::Dtype);
}

TEST(NetDoor, RateQuotaRejectsWithTypedFrame) {
  DoorFixture fx;
  TenantConfig limited;
  limited.name = "limited";
  limited.token = "tl";
  limited.requests_per_sec = 0.001;  // refills ~never within the test
  limited.burst = 2.0;
  fx.door->add_tenant(limited);
  ASSERT_TRUE(fx.start());

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect("unix:" + fx.sock, "tl", &err)) << err;
  const auto sys = diag_dominant(32, 5);
  int ok = 0, rate_rejected = 0;
  for (int i = 0; i < 5; ++i) {
    const auto r = client.solve<double>(sys.a, sys.b, sys.c, sys.d);
    if (r.ok()) ++ok;
    if (r.code == ErrorCode::QuotaRate) ++rate_rejected;
  }
  EXPECT_EQ(ok, 2);            // the burst
  EXPECT_EQ(rate_rejected, 3); // everything past it, typed
}

TEST(NetDoor, InflightQuotaRejects) {
  DoorFixture fx;
  TenantConfig tiny;
  tiny.name = "tiny";
  tiny.token = "tt";
  tiny.max_inflight = 1;
  fx.door->add_tenant(tiny);
  // Stall the workers so the first request is still in flight when the
  // second arrives.
  faults::FaultConfig fc;
  fc.rate_of(faults::Site::WorkerStall) = 1.0;
  fc.stall_ms = 120.0;
  faults::ScopedFaultConfig scoped(fc);
  ASSERT_TRUE(fx.start());

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect("unix:" + fx.sock, "tt", &err)) << err;
  const auto sys = diag_dominant(48, 9);
  ASSERT_TRUE(client.send_solve<double>(1, sys.a, sys.b, sys.c, sys.d, 0.0,
                                        &err));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(client.send_solve<double>(2, sys.a, sys.b, sys.c, sys.d, 0.0,
                                        &err));
  WireResult<double> first, second;
  ASSERT_TRUE(client.recv_result<double>(first, &err)) << err;
  ASSERT_TRUE(client.recv_result<double>(second, &err)) << err;
  // Arrival order: the quota reject answers immediately, the stalled
  // solve later.
  EXPECT_EQ(first.request_id, 2u);
  EXPECT_EQ(first.code, ErrorCode::QuotaInflight);
  EXPECT_EQ(second.request_id, 1u);
  EXPECT_TRUE(second.ok()) << second.error;
}

TEST(NetDoor, DrainMidStreamAnswersNeverSilentlyCloses) {
  DoorFixture fx;
  faults::FaultConfig fc;
  fc.rate_of(faults::Site::WorkerStall) = 1.0;
  fc.stall_ms = 150.0;
  faults::ScopedFaultConfig scoped(fc);
  ASSERT_TRUE(fx.start());

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect("unix:" + fx.sock, "ta", &err)) << err;
  const auto sys = diag_dominant(64, 11);
  // Request 1 gets admitted and stalls inside a worker.
  ASSERT_TRUE(client.send_solve<double>(1, sys.a, sys.b, sys.c, sys.d, 0.0,
                                        &err));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));

  fx.door->begin_drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Request 2 arrives mid-drain: it must get a typed Draining frame.
  ASSERT_TRUE(client.send_solve<double>(2, sys.a, sys.b, sys.c, sys.d, 0.0,
                                        &err));

  WireResult<double> r2, r1;
  ASSERT_TRUE(client.recv_result<double>(r2, &err)) << err;
  EXPECT_EQ(r2.request_id, 2u);
  EXPECT_EQ(r2.code, ErrorCode::Draining);
  // Request 1 was already in flight: it completes normally.
  ASSERT_TRUE(client.recv_result<double>(r1, &err)) << err;
  EXPECT_EQ(r1.request_id, 1u);
  ASSERT_TRUE(r1.ok()) << to_string(r1.code) << " " << r1.error;
  EXPECT_LT(residual(sys, r1.x), 1e-8);
  // The orderly close: Goodbye, not a dead socket.
  WireResult<double> r3;
  EXPECT_FALSE(client.recv_result<double>(r3, &err));
  EXPECT_NE(err.find("goodbye"), std::string::npos) << err;

  fx.door->shutdown();
}

TEST(NetDoor, InjectedCorruptionRejectedByChecksum) {
  DoorFixture fx;
  ASSERT_TRUE(fx.start());
  faults::FaultConfig fc;
  fc.seed = 42;
  fc.rate_of(faults::Site::NetCorrupt) = 1.0;
  faults::ScopedFaultConfig scoped(fc);

  Client client;
  std::string err;
  // Every received chunk is corrupted, so the handshake comes back as a
  // typed BadFrame reject — the decoder never accepts flipped bytes.
  EXPECT_FALSE(client.connect("unix:" + fx.sock, "ta", &err));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(fx.door->counters().injected_corruptions, 1u);
  EXPECT_GE(fx.door->counters().bad_frames, 1u);
}

TEST(NetDoor, InjectedDropClosesConnection) {
  DoorFixture fx;
  ASSERT_TRUE(fx.start());
  faults::FaultConfig fc;
  fc.seed = 7;
  fc.rate_of(faults::Site::NetDrop) = 1.0;
  faults::ScopedFaultConfig scoped(fc);

  Client client;
  std::string err;
  EXPECT_FALSE(client.connect("unix:" + fx.sock, "ta", &err));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(fx.door->counters().injected_drops, 1u);
}

TEST(NetDoor, IdleConnectionsAreReaped) {
  FrontDoorConfig fcfg;
  fcfg.idle_timeout_ms = 40.0;
  DoorFixture fx(fcfg);
  ASSERT_TRUE(fx.start());

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect("unix:" + fx.sock, "ta", &err)) << err;
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  WireResult<double> r;
  EXPECT_FALSE(client.recv_result<double>(r, &err));
  EXPECT_GE(fx.door->counters().idle_closes, 1u);
}

TEST(NetDoor, CrossTenantSameShapeStillCoalesces) {
  FrontDoorConfig fcfg;
  fcfg.max_service_inflight = 64;
  service::ServiceConfig scfg;
  scfg.flush_systems = 16;
  scfg.flush_interval_ms = 5.0;  // wide window so the batch fills
  DoorFixture fx(fcfg, scfg);
  ASSERT_TRUE(fx.start());

  constexpr int kPerTenant = 8;
  auto run_tenant = [&](const char* token) {
    Client client;
    std::string err;
    ASSERT_TRUE(client.connect("unix:" + fx.sock, token, &err)) << err;
    const auto sys = diag_dominant(96, 21);
    for (int i = 0; i < kPerTenant; ++i) {
      ASSERT_TRUE(client.send_solve<double>(
          static_cast<std::uint64_t>(i + 1), sys.a, sys.b, sys.c, sys.d,
          0.0, &err));
    }
    for (int i = 0; i < kPerTenant; ++i) {
      WireResult<double> r;
      ASSERT_TRUE(client.recv_result<double>(r, &err)) << err;
      ASSERT_TRUE(r.ok()) << r.error;
      EXPECT_LT(residual(sys, r.x), 1e-8);
    }
  };
  std::thread ta([&] { run_tenant("ta"); });
  std::thread tb([&] { run_tenant("tb"); });
  ta.join();
  tb.join();

  // Same shape from two tenants must merge into shared batches: fewer
  // flushes than systems proves cross-tenant coalescing survived QoS.
  const auto c = fx.svc->counters();
  EXPECT_EQ(c.completed, 2u * kPerTenant);
  EXPECT_LT(c.flushes, 2u * kPerTenant);
  EXPECT_GT(c.max_batch_systems, 1u);
}

// ------------------------------------------------------- protocol v2

TEST(NetProtocolV2, NegotiateVersionClamps) {
  EXPECT_EQ(negotiate_version(0), kVersion);   // legacy slot
  EXPECT_EQ(negotiate_version(1), kVersion);
  EXPECT_EQ(negotiate_version(2), kVersion2);
  EXPECT_EQ(negotiate_version(7), kMaxVersion);  // future client clamps
}

TEST(NetProtocolV2, HandshakeCarriesVersionsInReservedSlot) {
  std::string buf;
  encode_hello(buf, "tok", 2);
  auto r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  EXPECT_EQ(r.frame.version, kVersion);  // control frames stay v1-framed
  auto hello = parse_hello(r.frame.payload);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->advertised_version, 2);

  // A legacy Hello left the slot zeroed — that must still parse as 0.
  buf.clear();
  encode_hello(buf, "tok", 0);
  r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  hello = parse_hello(r.frame.payload);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->advertised_version, 0);

  buf.clear();
  encode_hello_ok(buf, "alpha", kVersion2);
  r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  const auto ok = parse_hello_ok(r.frame.payload);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->tenant, "alpha");
  EXPECT_EQ(ok->negotiated_version, kVersion2);
}

TEST(NetProtocolV2, SolveV2RoundTripAndCrossVersionRejection) {
  const auto sys = diag_dominant(48, 11);
  std::string buf;
  encode_solve_v2<double>(buf, 42, sys.a, sys.b, sys.c, sys.d, 1234.5,
                          0xDEADBEEFCAFEull);
  const auto r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  EXPECT_EQ(r.frame.version, kVersion2);
  EXPECT_EQ(r.frame.request_id, 42u);

  const auto v2 = parse_solve<double>(r.frame.payload, kVersion2);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(v2->n, 48u);
  EXPECT_EQ(v2->version, kVersion2);
  EXPECT_DOUBLE_EQ(v2->deadline_unix_ms, 1234.5);
  EXPECT_EQ(v2->idem_key, 0xDEADBEEFCAFEull);
  EXPECT_EQ(v2->a, sys.a);
  EXPECT_EQ(v2->d, sys.d);

  // The v2 payload is 8 bytes longer than v1's for the same n: parsing
  // it at the wrong version must fail the exact-length check, never
  // misread the idem key as sample data.
  EXPECT_FALSE(parse_solve<double>(r.frame.payload, kVersion).has_value());
  std::string v1buf;
  encode_solve<double>(v1buf, 1, sys.a, sys.b, sys.c, sys.d, 5.0);
  const auto rv1 = decode_frame(v1buf, 1 << 20);
  ASSERT_EQ(rv1.status, DecodeStatus::Ok);
  EXPECT_FALSE(parse_solve<double>(rv1.frame.payload, kVersion2).has_value());
}

// ------------------------------------------------------------- dedup

TEST(NetDedup, LifecycleHitJoinWaitersAndDuplicateTally) {
  DedupCache<int> cache;
  using State = DedupCache<int>::State;

  EXPECT_EQ(cache.begin(1, 10, 0, 0.0), State::Fresh);
  EXPECT_EQ(cache.begin(1, 10, 0, 0.0), State::InFlight);
  cache.add_waiter(1, 10, {7, 99});
  EXPECT_EQ(cache.mark_executed(1, 10), 0u);
  EXPECT_EQ(cache.mark_executed(1, 10), 1u);  // a dedup bug, tallied
  EXPECT_EQ(cache.stats().duplicate_executions, 1u);

  auto waiters = cache.take_waiters(1, 10);
  ASSERT_EQ(waiters.size(), 1u);
  EXPECT_EQ(waiters[0].conn_id, 7u);
  EXPECT_EQ(waiters[0].request_id, 99u);

  cache.complete(1, 10, 42, 100, 0.0);
  EXPECT_EQ(cache.begin(1, 10, 0, 1.0), State::Completed);
  const int* hit = cache.lookup(1, 10);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().joins, 1u);

  // abandon() forgets the key entirely; the next attempt is fresh.
  cache.abandon(1, 10);
  EXPECT_EQ(cache.begin(1, 10, 0, 1.0), State::Fresh);
}

TEST(NetDedup, TenantScopingEvictionAndTtl) {
  DedupConfig cfg;
  cfg.ttl_ms = 100.0;
  cfg.max_entries = 2;
  DedupCache<int> cache(cfg);
  using State = DedupCache<int>::State;

  // Same key under two tenants: two independent entries.
  EXPECT_EQ(cache.begin(1, 10, 0, 0.0), State::Fresh);
  cache.complete(1, 10, 41, 50, 0.0);
  EXPECT_EQ(cache.begin(2, 10, 0, 1.0), State::Fresh);
  cache.complete(2, 10, 42, 50, 1.0);
  ASSERT_NE(cache.lookup(2, 10), nullptr);
  EXPECT_EQ(*cache.lookup(2, 10), 42);

  // The entry cap is 2: a third completion evicts the oldest completed
  // entry, and an evicted key simply re-executes next time.
  EXPECT_EQ(cache.begin(1, 11, 0, 2.0), State::Fresh);
  cache.complete(1, 11, 43, 50, 2.0);
  EXPECT_EQ(cache.lookup(1, 10), nullptr);
  EXPECT_NE(cache.lookup(2, 10), nullptr);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.begin(1, 10, 0, 3.0), State::Fresh);
  cache.abandon(1, 10);

  // TTL: everything completed more than ttl_ms ago is swept.
  cache.sweep(500.0);
  EXPECT_EQ(cache.lookup(2, 10), nullptr);
  EXPECT_EQ(cache.lookup(1, 11), nullptr);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// --------------------------------------------------- overload control

TEST(NetTenant, DrrDequeueIfParksIneligibleLaneWithoutLosingItsTurn) {
  TenantRegistry reg;
  TenantConfig a;
  a.name = "parked";
  a.token = "a";
  reg.add(a);
  TenantConfig b;
  b.name = "open";
  b.token = "b";
  reg.add(b);
  Tenant* ta = reg.authenticate("a");
  Tenant* tb = reg.authenticate("b");

  DrrScheduler<int> sched(1.0);
  for (int i = 0; i < 4; ++i) {
    sched.enqueue(ta, 1, 1.0);
    sched.enqueue(tb, 2, 1.0);
  }

  // With ta's lane ineligible (an AIMD window at zero), dequeue_if must
  // serve only tb and then report "nothing eligible" — ta's items stay
  // queued, not dropped.
  int item = 0;
  int open_served = 0;
  while (sched.dequeue_if(item, [&](Tenant* t) { return t != ta; })) {
    EXPECT_EQ(item, 2);
    ++open_served;
  }
  EXPECT_EQ(open_served, 4);
  EXPECT_EQ(sched.size(), 4u);

  // Window reopens: the parked lane drains in full.
  int parked_served = 0;
  while (sched.dequeue_if(item, [](Tenant*) { return true; })) {
    EXPECT_EQ(item, 1);
    ++parked_served;
  }
  EXPECT_EQ(parked_served, 4);
  EXPECT_EQ(sched.size(), 0u);
}

// ------------------------------------------------------------ v2 E2E

TEST(NetDoorV2, LegacyV1ClientInteroperates) {
  DoorFixture fx;
  ASSERT_TRUE(fx.start());

  // Emulate a pre-negotiation client byte-for-byte: Hello with a zeroed
  // version slot, then a v1 Solve frame.
  const auto ep = parse_endpoint("unix:" + fx.sock);
  ASSERT_TRUE(ep.has_value());
  std::string err;
  Fd fd = connect_endpoint(*ep, &err);
  ASSERT_TRUE(fd.valid()) << err;

  std::string hello;
  encode_hello(hello, "ta", 0);
  ASSERT_TRUE(write_all(fd.get(), hello.data(), hello.size()));
  std::string rbuf, payload;
  FrameType type{};
  std::uint16_t ver = 0;
  ASSERT_TRUE(read_frame(fd.get(), rbuf, type, payload, &ver));
  ASSERT_EQ(type, FrameType::HelloOk);
  const auto ok = parse_hello_ok(payload);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->tenant, "alpha");
  EXPECT_EQ(ok->negotiated_version, kVersion);  // downgraded, not refused

  const auto sys = diag_dominant(64, 3);
  std::string solve;
  encode_solve<double>(solve, 5, sys.a, sys.b, sys.c, sys.d, 0.0);
  ASSERT_TRUE(write_all(fd.get(), solve.data(), solve.size()));
  ASSERT_TRUE(read_frame(fd.get(), rbuf, type, payload, &ver));
  ASSERT_EQ(type, FrameType::SolveOk);
  EXPECT_EQ(ver, kVersion);  // responses stay v1-framed on this conn
  const auto res = parse_solve_ok<double>(payload);
  ASSERT_TRUE(res.has_value());
  EXPECT_LT(residual(sys, res->x), 1e-8);
}

TEST(NetDoorV2, KeyedResendReplaysWithoutReexecution) {
  DoorFixture fx;
  ASSERT_TRUE(fx.start());

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect("unix:" + fx.sock, "ta", &err)) << err;
  EXPECT_EQ(client.wire_version(), kVersion2);

  const auto sys = diag_dominant(64, 17);
  const std::uint64_t key = client.mint_key();
  ASSERT_NE(key, 0u);
  ASSERT_TRUE(client.send_solve2<double>(1, sys.a, sys.b, sys.c, sys.d,
                                         0.0, key, &err))
      << err;
  WireResult<double> first;
  ASSERT_TRUE(client.recv_result<double>(first, &err)) << err;
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_LT(residual(sys, first.x), 1e-8);

  // A resend under the same key — what the client does after a dropped
  // SolveOk — replays the cached result; the device never runs twice.
  ASSERT_TRUE(client.send_solve2<double>(2, sys.a, sys.b, sys.c, sys.d,
                                         0.0, key, &err))
      << err;
  WireResult<double> replay;
  ASSERT_TRUE(client.recv_result<double>(replay, &err)) << err;
  EXPECT_EQ(replay.request_id, 2u);  // answered under the new rid
  ASSERT_TRUE(replay.ok()) << replay.error;
  EXPECT_EQ(replay.x, first.x);

  const auto c = fx.door->counters();
  EXPECT_GE(c.dedup_hits, 1u);
  EXPECT_EQ(c.duplicate_executions, 0u);
  EXPECT_EQ(fx.svc->counters().completed, 1u);  // one device execution
}

TEST(NetDoorV2, ExpiredOnArrivalRejectedBeforeTheService) {
  DoorFixture fx;
  ASSERT_TRUE(fx.start());

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect("unix:" + fx.sock, "ta", &err)) << err;

  const auto sys = diag_dominant(32, 5);
  // Negative budget crafts an absolute deadline already in the past.
  ASSERT_TRUE(client.send_solve2<double>(1, sys.a, sys.b, sys.c, sys.d,
                                         -50.0, client.mint_key(), &err))
      << err;
  WireResult<double> r;
  ASSERT_TRUE(client.recv_result<double>(r, &err)) << err;
  EXPECT_EQ(r.code, ErrorCode::DeadlineExpired)
      << to_string(r.code) << " " << r.error;

  EXPECT_EQ(fx.door->counters().deadline_expired_arrival, 1u);
  EXPECT_EQ(fx.svc->counters().submitted, 0u);  // never touched a device
}

TEST(NetDoorV2, TenantDefaultDeadlineApplies) {
  DoorFixture fx;
  TenantConfig timed;
  timed.name = "timed";
  timed.token = "tt";
  timed.default_deadline_ms = 0.0005;  // lapses before any dispatch
  fx.door->add_tenant(timed);
  ASSERT_TRUE(fx.start());

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect("unix:" + fx.sock, "tt", &err)) << err;

  // A v1-style Solve with NO deadline of its own: the tenant default
  // must be folded in by the door and expire the request.
  const auto sys = diag_dominant(32, 9);
  ASSERT_TRUE(client.send_solve<double>(1, sys.a, sys.b, sys.c, sys.d,
                                        0.0, &err))
      << err;
  WireResult<double> r;
  ASSERT_TRUE(client.recv_result<double>(r, &err)) << err;
  EXPECT_EQ(r.code, ErrorCode::DeadlineExpired)
      << to_string(r.code) << " " << r.error;
  const auto c = fx.door->counters();
  EXPECT_GE(c.deadline_expired_arrival + c.deadline_expired_queued, 1u);
}

// ---------------------------------------------------------- clock skew

TEST(NetProtocol, HelloTimestampRidesOptionalTail) {
  // Stamped Hello/HelloOk round-trip the f64; legacy frames without it
  // still parse (has_timestamp = false, value 0).
  std::string buf;
  encode_hello(buf, "tok", kMaxVersion, 1754650000123.5);
  auto r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  auto hello = parse_hello(r.frame.payload);
  ASSERT_TRUE(hello.has_value());
  EXPECT_TRUE(hello->has_timestamp);
  EXPECT_DOUBLE_EQ(hello->client_unix_ms, 1754650000123.5);

  buf.clear();
  encode_hello(buf, "tok");
  r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  hello = parse_hello(r.frame.payload);
  ASSERT_TRUE(hello.has_value());
  EXPECT_FALSE(hello->has_timestamp);
  EXPECT_EQ(hello->client_unix_ms, 0.0);

  buf.clear();
  encode_hello_ok(buf, "alpha", kVersion2, 42.0);
  r = decode_frame(buf, 1 << 20);
  ASSERT_EQ(r.status, DecodeStatus::Ok);
  const auto ok = parse_hello_ok(r.frame.payload);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->has_timestamp);
  EXPECT_DOUBLE_EQ(ok->server_unix_ms, 42.0);
}

TEST(NetDoorV2, SkewedClockDeadlineClampedToTenantDefault) {
  FrontDoorConfig fcfg;
  fcfg.max_clock_skew_ms = 500.0;
  DoorFixture fx(fcfg);
  TenantConfig skewed;
  skewed.name = "skewed";
  skewed.token = "ts";
  skewed.default_deadline_ms = 5000.0;
  fx.door->add_tenant(skewed);
  ASSERT_TRUE(fx.start());

  // A client whose clock runs 10 s slow, emulated byte-for-byte: the
  // Hello timestamp reveals the skew, so the absolute deadline it mints
  // (8 s "in the future" by its clock, expired by ours) must be
  // discarded in favour of the tenant's default budget — the request
  // solves instead of dying DeadlineExpired on arrival.
  const auto ep = parse_endpoint("unix:" + fx.sock);
  ASSERT_TRUE(ep.has_value());
  std::string err;
  Fd fd = connect_endpoint(*ep, &err);
  ASSERT_TRUE(fd.valid()) << err;
  const double skewed_now = unix_now_ms() - 10'000.0;
  std::string hello;
  encode_hello(hello, "ts", kMaxVersion, skewed_now);
  ASSERT_TRUE(write_all(fd.get(), hello.data(), hello.size()));
  std::string rbuf, payload;
  FrameType type{};
  ASSERT_TRUE(read_frame(fd.get(), rbuf, type, payload));
  ASSERT_EQ(type, FrameType::HelloOk);
  const auto ok = parse_hello_ok(payload);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->has_timestamp);  // server stamps its clock back

  const auto sys = diag_dominant(64, 21);
  std::string solve;
  encode_solve_v2<double>(solve, 7, sys.a, sys.b, sys.c, sys.d,
                          skewed_now + 8'000.0, 0);
  ASSERT_TRUE(write_all(fd.get(), solve.data(), solve.size()));
  ASSERT_TRUE(read_frame(fd.get(), rbuf, type, payload));
  ASSERT_EQ(type, FrameType::SolveOk)
      << (type == FrameType::SolveErr ? parse_solve_err(payload)->message
                                      : "");
  const auto res = parse_solve_ok<double>(payload);
  ASSERT_TRUE(res.has_value());
  EXPECT_LT(residual(sys, res->x), 1e-8);
  EXPECT_EQ(fx.door->counters().deadline_skew_clamped, 1u);
}

TEST(NetDoorV2, AccurateClockKeepsAbsoluteDeadlines) {
  // Same wire traffic but with an honest Hello timestamp: no clamping,
  // so a genuinely expired absolute deadline is still rejected.
  FrontDoorConfig fcfg;
  fcfg.max_clock_skew_ms = 500.0;
  DoorFixture fx(fcfg);
  ASSERT_TRUE(fx.start());

  Client client;  // net::Client stamps its real clock in the Hello
  std::string err;
  ASSERT_TRUE(client.connect("unix:" + fx.sock, "ta", &err)) << err;
  const auto sys = diag_dominant(32, 4);
  ASSERT_TRUE(client.send_solve2<double>(1, sys.a, sys.b, sys.c, sys.d,
                                         -50.0, 0, &err))
      << err;
  WireResult<double> r;
  ASSERT_TRUE(client.recv_result<double>(r, &err)) << err;
  EXPECT_EQ(r.code, ErrorCode::DeadlineExpired)
      << to_string(r.code) << " " << r.error;
  EXPECT_EQ(fx.door->counters().deadline_skew_clamped, 0u);
}

TEST(NetDoorV2, ReusedKeyWithDifferentPayloadRejected) {
  DoorFixture fx;
  ASSERT_TRUE(fx.start());

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect("unix:" + fx.sock, "ta", &err)) << err;
  const auto sys = diag_dominant(64, 31);
  const std::uint64_t key = client.mint_key();
  ASSERT_TRUE(client.send_solve2<double>(1, sys.a, sys.b, sys.c, sys.d,
                                         0.0, key, &err))
      << err;
  WireResult<double> first;
  ASSERT_TRUE(client.recv_result<double>(first, &err)) << err;
  ASSERT_TRUE(first.ok()) << first.error;

  // The same key fronting different bytes is a client bug; answering
  // with the cached result would silently hand back the wrong solution.
  auto other = sys;
  other.d[0] += 1.0;
  ASSERT_TRUE(client.send_solve2<double>(2, other.a, other.b, other.c,
                                         other.d, 0.0, key, &err))
      << err;
  WireResult<double> r;
  ASSERT_TRUE(client.recv_result<double>(r, &err)) << err;
  EXPECT_EQ(r.code, ErrorCode::KeyReuse)
      << to_string(r.code) << " " << r.error;
  EXPECT_EQ(fx.door->counters().key_reuse, 1u);
  EXPECT_EQ(fx.svc->counters().completed, 1u);  // never re-executed
}

// ------------------------------------------------------- chaos proxy

TEST(NetChaosProxy, TransparentRelayAndDropToggle) {
  DoorFixture fx;
  ASSERT_TRUE(fx.start());

  const std::string psock = unique_sock("chaosproxy");
  ChaosConfig ccfg;
  ccfg.seed = 9;
  ccfg.drop_rate = 1.0;  // armed but dormant until set_enabled(true)
  ChaosProxy proxy("unix:" + psock, "unix:" + fx.sock, ccfg);
  proxy.set_enabled(false);
  std::string err;
  ASSERT_TRUE(proxy.start(&err)) << err;

  // Disabled: a byte-transparent relay — a full solve round-trips.
  Client client;
  ASSERT_TRUE(client.connect("unix:" + psock, "ta", &err)) << err;
  const auto sys = diag_dominant(64, 29);
  const auto r = client.solve<double>(sys.a, sys.b, sys.c, sys.d);
  ASSERT_TRUE(r.ok()) << to_string(r.code) << " " << r.error;
  EXPECT_LT(residual(sys, r.x), 1e-8);
  const auto c0 = proxy.counters();
  EXPECT_GE(c0.connections, 1u);
  EXPECT_GT(c0.bytes_up, 0u);
  EXPECT_GT(c0.bytes_down, 0u);
  EXPECT_EQ(c0.drops, 0u);
  client.close();

  // Enabled with drop_rate 1: the first relayed chunk (the Hello) is
  // swallowed and both sides are torn down, so the handshake dies.
  proxy.set_enabled(true);
  Client doomed;
  EXPECT_FALSE(doomed.connect("unix:" + psock, "ta", &err));
  EXPECT_GE(proxy.counters().drops, 1u);

  // And off again: transparent once more.
  proxy.set_enabled(false);
  Client again;
  ASSERT_TRUE(again.connect("unix:" + psock, "ta", &err)) << err;
  again.close();
  proxy.stop();
  ::unlink(psock.c_str());
}
