// Trace-context propagation invariants. The acceptance bar for the
// request-scoped tracing work: after any service run, 100% of the spans
// a request's solve path emits are reachable (by walking parent ids)
// from that request's "request" root span — including when the path
// detours through retries, device failover, chunk bisection of poisoned
// batches, or the CPU fallback. Plus the TSan-facing races: tracer and
// metrics snapshots taken while workers are still recording.
//
// Suite names matter: the CI TSan job selects "SolveService*" and
// "TraceTree*" suites by regex.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "faults/faults.hpp"
#include "gpusim/device.hpp"
#include "service/solve_service.hpp"
#include "solver/auto_solver.hpp"
#include "telemetry/export.hpp"
#include "tridiag/generators.hpp"

namespace {

using namespace tda;
using namespace tda::service;
using telemetry::kInvalidSpan;
using telemetry::SpanRecord;

SolveRequest<double> make_request(std::size_t n, std::uint64_t seed) {
  SolveRequest<double> req;
  req.a.resize(n);
  req.b.resize(n);
  req.c.resize(n);
  req.d.resize(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    req.a[i] = (i == 0) ? 0.0 : rng.uniform(-1, 1);
    req.c[i] = (i == n - 1) ? 0.0 : rng.uniform(-1, 1);
    req.b[i] = (std::abs(req.a[i]) + std::abs(req.c[i])) * 2.0 + 0.5;
    req.d[i] = rng.uniform(-1, 1);
  }
  return req;
}

bool has_attr(const SpanRecord& s, const std::string& key) {
  for (const auto& [k, v] : s.attrs)
    if (k == key) return true;
  return false;
}

/// Walks `span`'s parent chain; returns the index of the "request" root
/// it lands on, or kInvalidSpan when the chain dangles, leaves the
/// span's trace, or cycles.
std::size_t root_of(const std::vector<SpanRecord>& spans, std::size_t i) {
  std::size_t hops = 0;
  while (hops++ <= spans.size()) {
    const SpanRecord& s = spans[i];
    if (s.name == "request") return i;
    if (s.parent == kInvalidSpan || s.parent >= spans.size())
      return kInvalidSpan;
    if (spans[s.parent].trace_id != s.trace_id) return kInvalidSpan;
    i = s.parent;
  }
  return kInvalidSpan;  // cycle
}

/// The tentpole invariant: every span that carries a trace id is
/// reachable from exactly one "request" root of the same trace id.
void expect_single_rooted(const std::vector<SpanRecord>& spans) {
  std::map<std::uint64_t, std::size_t> roots;  // trace id -> root count
  for (const auto& s : spans)
    if (s.name == "request") {
      EXPECT_NE(s.trace_id, 0u) << "request root without a trace id";
      ++roots[s.trace_id];
    }
  for (const auto& [trace, count] : roots)
    EXPECT_EQ(count, 1u) << "trace " << trace << " has " << count
                         << " roots";
  std::size_t traced = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].trace_id == 0) continue;
    ++traced;
    const std::size_t root = root_of(spans, i);
    ASSERT_NE(root, kInvalidSpan)
        << "span '" << spans[i].name << "' (#" << i
        << ") is not reachable from a request root";
    EXPECT_EQ(spans[root].trace_id, spans[i].trace_id);
  }
  EXPECT_GT(traced, 0u) << "no spans carried a trace id at all";
}

std::vector<gpusim::DeviceSpec> one_device() {
  return {gpusim::geforce_gtx_470()};
}

// ---------- plain traffic ----------

TEST(TraceTree, ServiceSpansFormOneTreePerRequest) {
  ServiceConfig cfg;
  cfg.flush_systems = 4;
  SolveService<double> svc(
      {gpusim::geforce_gtx_470(), gpusim::geforce_gtx_280()}, cfg);
  svc.telemetry().enable_all();

  std::vector<std::future<SolveResponse<double>>> futs;
  const std::size_t shapes[] = {33, 64, 128};
  for (int i = 0; i < 30; ++i)
    futs.push_back(svc.submit(make_request(shapes[i % 3], 100 + i)));
  std::set<std::uint64_t> resp_traces;
  for (auto& f : futs) {
    auto resp = f.get();
    ASSERT_EQ(resp.status, SolveStatus::Ok);
    EXPECT_NE(resp.trace_id, 0u);
    resp_traces.insert(resp.trace_id);
  }
  svc.shutdown();

  // Every request minted its own trace id and told the caller.
  EXPECT_EQ(resp_traces.size(), 30u);

  const auto spans = svc.telemetry().tracer.snapshot();
  expect_single_rooted(spans);

  // The response trace ids are exactly the rooted traces, and every
  // root reached a terminal state (outcome attr + closed).
  std::set<std::uint64_t> rooted;
  for (const auto& s : spans)
    if (s.name == "request") {
      rooted.insert(s.trace_id);
      EXPECT_TRUE(has_attr(s, "outcome"))
          << "request root left open (no outcome)";
      EXPECT_GE(s.end_s, s.begin_s);
    }
  EXPECT_EQ(rooted, resp_traces);

  // Solve-path span kinds all made it under the trees.
  std::set<std::string> names;
  for (const auto& s : spans)
    if (s.trace_id != 0) names.insert(s.name);
  for (const char* expected : {"request", "batch", "enqueue", "solve"})
    EXPECT_TRUE(names.count(expected)) << "missing " << expected;
}

TEST(TraceTree, CallerSuppliedContextIsAdopted) {
  ServiceConfig cfg;
  cfg.flush_systems = 1;
  SolveService<double> svc(one_device(), cfg);
  svc.telemetry().enable_all();

  auto req = make_request(64, 7);
  req.trace.trace_id = 0xfeedbeef;
  auto resp = svc.submit(std::move(req)).get();
  ASSERT_EQ(resp.status, SolveStatus::Ok);
  EXPECT_EQ(resp.trace_id, 0xfeedbeefu);
  svc.shutdown();

  const auto spans = svc.telemetry().tracer.snapshot();
  bool found = false;
  for (const auto& s : spans)
    if (s.name == "request" && s.trace_id == 0xfeedbeefu) found = true;
  EXPECT_TRUE(found) << "service re-minted instead of adopting";
  expect_single_rooted(spans);
}

TEST(TraceTree, LatencyExemplarsPointAtRecordedTraces) {
  ServiceConfig cfg;
  cfg.flush_systems = 4;
  SolveService<double> svc(one_device(), cfg);
  svc.telemetry().enable_all();

  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 16; ++i)
    futs.push_back(svc.submit(make_request(64, 300 + i)));
  for (auto& f : futs) ASSERT_EQ(f.get().status, SolveStatus::Ok);
  svc.shutdown();

  std::set<std::uint64_t> rooted;
  for (const auto& s : svc.telemetry().tracer.snapshot())
    if (s.name == "request") rooted.insert(s.trace_id);

  // Each latency bucket's exemplar names a request we actually traced.
  std::size_t exemplars = 0;
  for (const auto& [name, snap] : svc.telemetry().metrics.latencies()) {
    if (name.rfind("service.request_latency_ms{", 0) != 0) continue;
    for (const auto& ex : snap.exemplars)
      if (ex.trace_id != 0) {
        ++exemplars;
        EXPECT_TRUE(rooted.count(ex.trace_id))
            << name << " exemplar " << ex.trace_id << " is unknown";
      }
  }
  EXPECT_GT(exemplars, 0u);
}

// ---------- faulted paths ----------

TEST(TraceTree, RetriesAndFailoverStayUnderRoot) {
  faults::FaultConfig fc;
  fc.seed = 5;
  fc.rate_of(faults::Site::DeviceLaunch) = 0.3;
  faults::ScopedFaultConfig scoped(fc);

  ServiceConfig cfg;
  cfg.flush_systems = 8;
  cfg.resilience.retry_backoff_ms = 0.01;
  SolveService<double> svc(one_device(), cfg);
  svc.telemetry().enable_all();

  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 32; ++i)
    futs.push_back(svc.submit(make_request(96, 500 + i)));
  for (auto& f : futs) ASSERT_EQ(f.get().status, SolveStatus::Ok);
  const auto c = svc.counters();
  svc.shutdown();

  EXPECT_GT(c.retries + c.failovers + c.cpu_failovers, 0u)
      << "fault rate produced no retries; test exercised nothing";
  expect_single_rooted(svc.telemetry().tracer.snapshot());
}

TEST(TraceTree, CpuFallbackStaysUnderRoot) {
  faults::FaultConfig fc;
  fc.seed = 2;
  fc.rate_of(faults::Site::DeviceLaunch) = 1.0;
  faults::ScopedFaultConfig scoped(fc);

  ServiceConfig cfg;
  cfg.flush_systems = 4;
  cfg.resilience.retry_backoff_ms = 0.01;
  SolveService<double> svc(one_device(), cfg);
  svc.telemetry().enable_all();

  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 8; ++i)
    futs.push_back(svc.submit(make_request(64, 700 + i)));
  for (auto& f : futs) {
    auto resp = f.get();
    ASSERT_EQ(resp.status, SolveStatus::Ok);
    EXPECT_TRUE(resp.fallback_used);
  }
  svc.shutdown();

  const auto spans = svc.telemetry().tracer.snapshot();
  expect_single_rooted(spans);
  // Roots record that they ended on the fallback path.
  std::size_t fallback_roots = 0;
  for (const auto& s : spans)
    if (s.name == "request")
      for (const auto& [k, v] : s.attrs)
        if (k == "outcome" && v == "fallback") ++fallback_roots;
  EXPECT_EQ(fallback_roots, 8u);
}

TEST(TraceTree, PoisonBisectionClosesEveryRootWithTypedOutcome) {
  faults::FaultConfig fc;
  fc.seed = 11;
  fc.rate_of(faults::Site::PoisonNaN) = 0.25;
  faults::ScopedFaultConfig scoped(fc);

  ServiceConfig cfg;
  cfg.flush_systems = 8;  // multi-member batches, so isolation must bisect
  SolveService<double> svc(one_device(), cfg);
  svc.telemetry().enable_all();

  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 32; ++i)
    futs.push_back(svc.submit(make_request(64, 900 + i)));
  std::size_t poisoned = 0;
  for (auto& f : futs) {
    const auto resp = f.get();
    if (resp.status == SolveStatus::NonFinite) ++poisoned;
    EXPECT_NE(resp.trace_id, 0u);
  }
  svc.shutdown();

  EXPECT_GT(poisoned, 0u) << "poison rate fired on nothing";
  const auto spans = svc.telemetry().tracer.snapshot();
  expect_single_rooted(spans);
  for (const auto& s : spans) {
    if (s.name == "request") {
      EXPECT_TRUE(has_attr(s, "outcome"))
          << "root left open after quarantine";
    }
  }
}

// ---------- in-process entry (AutoSolver) ----------

TEST(TraceTree, AutoSolverMintsOneRootPerTopLevelSolve) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  telemetry::Telemetry tel;
  tel.enable_all();
  dev.set_telemetry(&tel);
  solver::AutoSolver<double> autos(dev);

  auto batch = tridiag::make_diag_dominant<double>(4, 64, 21);
  autos.solve(batch);

  solver::RaggedBatch<double> ragged(
      std::vector<std::size_t>{33, 64, 33});
  Rng rng(77);
  for (std::size_t s = 0; s < ragged.num_systems(); ++s) {
    const std::size_t off = ragged.offset(s);
    const std::size_t n = ragged.system_size(s);
    for (std::size_t i = 0; i < n; ++i) {
      ragged.a()[off + i] = (i == 0) ? 0.0 : rng.uniform(-1, 1);
      ragged.c()[off + i] = (i == n - 1) ? 0.0 : rng.uniform(-1, 1);
      ragged.b()[off + i] = std::abs(ragged.a()[off + i]) +
                            std::abs(ragged.c()[off + i]) + 1.5;
      ragged.d()[off + i] = rng.uniform(-1, 1);
    }
  }
  autos.solve(ragged);
  dev.set_telemetry(nullptr);

  const auto spans = tel.tracer.snapshot();
  expect_single_rooted(spans);
  std::vector<std::string> kinds;
  for (const auto& s : spans)
    if (s.name == "request")
      for (const auto& [k, v] : s.attrs)
        if (k == "kind") kinds.push_back(v);
  // One root per solve() call — the ragged solve's per-group sub-solves
  // join the ambient context instead of minting their own roots.
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], "uniform");
  EXPECT_EQ(kinds[1], "ragged");
}

// ---------- snapshot races (the TSan targets) ----------

TEST(SolveServiceTraceRaces, SnapshotsRaceLiveTraffic) {
  ServiceConfig cfg;
  cfg.flush_systems = 4;
  SolveService<double> svc(one_device(), cfg);
  svc.telemetry().enable_all();

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      // Every read-side surface a dashboard touches, while workers
      // record: span table, histograms, gauges, OpenMetrics render.
      (void)svc.telemetry().tracer.snapshot();
      (void)svc.telemetry().metrics.latencies();
      (void)svc.telemetry().metrics.gauges();
      svc.publish_gauges();
      (void)telemetry::to_openmetrics(svc.telemetry().metrics);
      (void)svc.worker_health();
    }
  });

  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::future<SolveResponse<double>>> futs;
      for (int i = 0; i < 24; ++i)
        futs.push_back(svc.submit(make_request(64, 1000 + t * 100 + i)));
      for (auto& f : futs)
        if (f.get().status == SolveStatus::Ok) ok.fetch_add(1);
    });
  }
  for (auto& th : clients) th.join();
  stop.store(true);
  reader.join();
  svc.shutdown();

  EXPECT_EQ(ok.load(), 72);
  expect_single_rooted(svc.telemetry().tracer.snapshot());
}

TEST(SolveServiceTraceRaces, HistogramWritersRaceQuantileReaders) {
  telemetry::MetricsRegistry mx;
  mx.enable();
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      const std::string name = telemetry::labeled(
          "service.request_latency_ms",
          {{"shape", t % 2 == 0 ? "le64" : "le128"},
           {"dtype", "f64"},
           {"outcome", "ok"}});
      for (int i = 0; i < 4000; ++i) {
        mx.observe_latency(name, 0.1 * (t + 1) * (i % 50 + 1),
                           static_cast<std::uint64_t>(t * 10000 + i + 1));
        mx.set("engine.utilization", 0.5);
        mx.add("service.submitted_total");
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load()) {
      for (const auto& [name, snap] : mx.latencies()) {
        (void)snap.quantile(0.5);
        (void)snap.quantile(0.99);
        (void)snap.exemplar_at(0.99);
      }
      (void)mx.gauge("engine.utilization");
      (void)telemetry::to_openmetrics(mx);
    }
  });
  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();

  double total = 0;
  for (const auto& [name, snap] : mx.latencies()) total += snap.count;
  EXPECT_EQ(total, 4.0 * 4000);  // 4 writers x 4000, across two series
  EXPECT_EQ(mx.counter("service.submitted_total"), 16000.0);
}

}  // namespace
