// Protocol fuzz harness (docs/NET.md): deterministic seeded mutation of
// valid frames — bit flips, truncations, extensions, splices — driven
// through decode_frame and the payload parsers. The contract under
// test:
//
//   * the decoder never crashes or over-reads (ASan/UBSan enforce this
//     in the sanitize CI job, which runs the full ctest suite);
//   * a mutant is only ever accepted when the bytes the decoder
//     consumed are literally a valid original frame prefix-intact —
//     "zero accepted-corrupt frames". The FNV-1a checksum makes this
//     provable: every hash step is a bijection of the state, so any
//     single corrupted byte in the covered range changes the sum.
//
// Everything is seeded; a failure reproduces from the iteration index.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/dedup.hpp"
#include "net/protocol.hpp"

using namespace tda::net;

namespace {

/// splitmix64 — tiny, seeded, good enough to steer mutations.
class FuzzRng {
 public:
  explicit FuzzRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }

 private:
  std::uint64_t state_;
};

std::vector<std::string> build_corpus() {
  std::vector<std::string> corpus;
  {
    std::string f;
    encode_hello(f, "tenant-token-abcdef");
    corpus.push_back(f);
  }
  {
    std::string f;
    encode_hello_ok(f, "alpha");
    corpus.push_back(f);
  }
  {
    std::string f;
    encode_goodbye(f);
    corpus.push_back(f);
  }
  {
    std::string f;
    encode_solve_err(f, 31337, ErrorCode::QuotaRate, "over the limit");
    corpus.push_back(f);
  }
  for (const std::size_t n : {1u, 7u, 64u}) {
    std::vector<float> vf(n, 1.5f);
    std::vector<double> vd(n, 2.5);
    std::string f;
    encode_solve<float>(f, 11, vf, vf, vf, vf, 4.0);
    corpus.push_back(f);
    f.clear();
    encode_solve<double>(f, 12, vd, vd, vd, vd, 0.0);
    corpus.push_back(f);
    f.clear();
    encode_solve_ok<float>(f, 13, vf, 0x1234, 1.0, 0.5, false);
    corpus.push_back(f);
    f.clear();
    encode_solve_ok<double>(f, 14, vd, 0x5678, 2.0, 0.25, true);
    corpus.push_back(f);
    f.clear();
    encode_solve_v2<float>(f, 15, vf, vf, vf, vf, 1.7e12, 0xA5A5A5A5ull);
    corpus.push_back(f);
    f.clear();
    encode_solve_v2<double>(f, 16, vd, vd, vd, vd, 0.0, 0x5A5A5A5Aull);
    corpus.push_back(f);
  }
  return corpus;
}

std::string mutate(const std::string& original, FuzzRng& rng) {
  std::string m = original;
  switch (rng.below(4)) {
    case 0: {  // flip 1..8 bits
      const std::size_t flips = 1 + rng.below(8);
      for (std::size_t i = 0; i < flips && !m.empty(); ++i) {
        const std::size_t at = rng.below(m.size());
        m[at] = static_cast<char>(m[at] ^ (1u << rng.below(8)));
      }
      break;
    }
    case 1:  // truncate
      m.resize(rng.below(m.size() + 1));
      break;
    case 2: {  // extend with junk
      const std::size_t extra = 1 + rng.below(64);
      for (std::size_t i = 0; i < extra; ++i) {
        m.push_back(static_cast<char>(rng.next() & 0xFF));
      }
      break;
    }
    default: {  // splice: overwrite a random run with random bytes
      if (!m.empty()) {
        const std::size_t at = rng.below(m.size());
        const std::size_t len =
            1 + rng.below(std::min<std::size_t>(m.size() - at, 16));
        for (std::size_t i = 0; i < len; ++i) {
          m[at + i] = static_cast<char>(rng.next() & 0xFF);
        }
      }
      break;
    }
  }
  return m;
}

/// Feeds a payload through every parser; none may crash (bounds checks
/// are the assertion — ASan turns an over-read into a test failure).
void exercise_parsers(const std::string& payload) {
  (void)parse_hello(payload);
  (void)parse_hello_ok(payload);
  (void)parse_solve_err(payload);
  (void)solve_dtype(payload);
  (void)parse_solve<float>(payload);
  (void)parse_solve<double>(payload);
  (void)parse_solve<float>(payload, kVersion2);
  (void)parse_solve<double>(payload, kVersion2);
  (void)parse_solve_ok<float>(payload);
  (void)parse_solve_ok<double>(payload);
}

}  // namespace

TEST(NetFuzz, TenThousandMutatedFramesNeverAcceptedCorrupt) {
  const auto corpus = build_corpus();
  FuzzRng rng(0xF00DFACEu);
  constexpr int kIterations = 12000;
  int accepted_intact = 0, rejected = 0, need_more = 0;

  for (int i = 0; i < kIterations; ++i) {
    const std::string& original = corpus[rng.below(corpus.size())];
    const std::string m = mutate(original, rng);
    const DecodeResult r = decode_frame(m, std::size_t{1} << 20);
    switch (r.status) {
      case DecodeStatus::Ok: {
        // Acceptance is only legal when the consumed bytes are exactly
        // the original frame (mutations past the frame end are the next
        // frame's problem, not corruption of this one).
        ASSERT_EQ(r.consumed, original.size()) << "iteration " << i;
        ASSERT_LE(r.consumed, m.size()) << "iteration " << i;
        ASSERT_EQ(m.compare(0, r.consumed, original), 0)
            << "iteration " << i << ": decoder accepted corrupted bytes";
        exercise_parsers(std::string(r.frame.payload));
        ++accepted_intact;
        break;
      }
      case DecodeStatus::Corrupt:
        ++rejected;
        break;
      case DecodeStatus::NeedMore:
        ++need_more;
        break;
    }
  }
  // Sanity on the mix: extensions leave the frame intact (~1/4 of
  // mutations), truncations mostly NeedMore, flips/splices mostly
  // Corrupt. All three classes must actually occur.
  EXPECT_GT(accepted_intact, kIterations / 20);
  EXPECT_GT(rejected, kIterations / 4);
  EXPECT_GT(need_more, kIterations / 20);
}

TEST(NetFuzz, RandomGarbageNeverDecodesAndParsersNeverOverRead) {
  FuzzRng rng(0xDEADBEEFu);
  for (int i = 0; i < 4000; ++i) {
    std::string junk(rng.below(512), '\0');
    for (auto& ch : junk) ch = static_cast<char>(rng.next() & 0xFF);
    const DecodeResult r = decode_frame(junk, std::size_t{1} << 20);
    // A random 4-byte magic + matching checksum is a ~2^-64 accident;
    // treat acceptance as a bug outright.
    ASSERT_NE(r.status, DecodeStatus::Ok) << "iteration " << i;
    exercise_parsers(junk);
  }
}

TEST(NetFuzz, StreamReassemblySurvivesArbitraryChunking) {
  // A valid multi-frame stream fed one random-sized chunk at a time
  // must produce exactly the original frames — the NeedMore path never
  // loses sync.
  const auto corpus = build_corpus();
  std::string stream;
  for (const auto& f : corpus) stream += f;
  FuzzRng rng(0xC0FFEEu);
  for (int round = 0; round < 50; ++round) {
    std::string rbuf;
    std::size_t fed = 0, decoded = 0;
    while (decoded < corpus.size()) {
      const DecodeResult r = decode_frame(rbuf, std::size_t{1} << 20);
      if (r.status == DecodeStatus::Ok) {
        ASSERT_EQ(rbuf.compare(0, r.consumed, corpus[decoded]), 0);
        rbuf.erase(0, r.consumed);
        ++decoded;
        continue;
      }
      ASSERT_EQ(r.status, DecodeStatus::NeedMore);
      ASSERT_LT(fed, stream.size());
      const std::size_t chunk =
          std::min(stream.size() - fed, 1 + rng.below(97));
      rbuf.append(stream, fed, chunk);
      fed += chunk;
    }
  }
}

TEST(NetFuzzV2, MutatedDeadlineOrKeyFieldsNeverDecode) {
  // The v2 reliability fields — absolute deadline and idempotency key —
  // sit at payload offsets [8, 24). A flipped bit anywhere in them must
  // fail the frame checksum: a corrupted deadline silently shifted into
  // the future, or a corrupted key colliding with another request's
  // cache entry, would be a correctness hole rather than a parse error.
  std::vector<double> vd(16, 2.5);
  std::string frame;
  encode_solve_v2<double>(frame, 7, vd, vd, vd, vd, 1.6e12, 0x0123456789ull);
  for (std::size_t off = kHeaderSize + 8; off < kHeaderSize + 24; ++off) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string m = frame;
      m[off] = static_cast<char>(m[off] ^ (1 << bit));
      const DecodeResult r = decode_frame(m, std::size_t{1} << 20);
      EXPECT_NE(r.status, DecodeStatus::Ok)
          << "payload byte " << off - kHeaderSize << " bit " << bit;
    }
  }
}

TEST(NetFuzzV2, VersionFlipsNeverReinterpretAcrossVersions) {
  // A v2 frame whose header version byte is rewritten to 1 (or a v1
  // frame rewritten to 2) must be rejected by the checksum, never
  // parsed under the wrong layout — the version field is covered.
  std::vector<double> vd(8, 1.25);
  std::string v2;
  encode_solve_v2<double>(v2, 1, vd, vd, vd, vd, 9.9e11, 42);
  std::string v1;
  encode_solve<double>(v1, 1, vd, vd, vd, vd, 3.0);
  for (std::string* f : {&v2, &v1}) {
    for (int claim = 0; claim <= 3; ++claim) {
      std::string m = *f;
      if (static_cast<unsigned char>(m[4]) == claim) continue;
      m[4] = static_cast<char>(claim);
      const DecodeResult r = decode_frame(m, std::size_t{1} << 20);
      EXPECT_NE(r.status, DecodeStatus::Ok) << "claimed version " << claim;
    }
  }
}

TEST(NetFuzzV2, NegotiationDowngradeRoundTripsThroughHandshakeFrames) {
  // Whatever a peer advertises — legacy 0, current, or from the future
  // — the negotiated result survives an encode/parse round trip of both
  // handshake frames and is a version this build actually speaks.
  for (const std::uint16_t adv :
       {std::uint16_t{0}, std::uint16_t{1}, std::uint16_t{2},
        std::uint16_t{7}, std::uint16_t{0xFFFF}}) {
    std::string hello;
    encode_hello(hello, "tok", adv);
    auto hr = decode_frame(hello, 1 << 20);
    ASSERT_EQ(hr.status, DecodeStatus::Ok);
    const auto h = parse_hello(hr.frame.payload);
    ASSERT_TRUE(h.has_value());
    ASSERT_EQ(h->advertised_version, adv);

    const std::uint16_t negotiated = negotiate_version(h->advertised_version);
    ASSERT_GE(negotiated, kVersion);
    ASSERT_LE(negotiated, kMaxVersion);
    // Negotiation is idempotent: agreeing on a version and re-offering
    // it negotiates to itself.
    ASSERT_EQ(negotiate_version(negotiated), negotiated);

    std::string ok;
    encode_hello_ok(ok, "tenant", negotiated);
    auto orr = decode_frame(ok, 1 << 20);
    ASSERT_EQ(orr.status, DecodeStatus::Ok);
    const auto o = parse_hello_ok(orr.frame.payload);
    ASSERT_TRUE(o.has_value());
    ASSERT_EQ(o->negotiated_version, negotiated);
  }
}

TEST(NetFuzzV2, DedupCacheStormNeverServesAWrongKeyedResult) {
  // Random storm of begins/completes/abandons/sweeps across a handful
  // of tenants and a small key space, with caps tight enough to force
  // constant eviction. The invariant: a lookup or Completed begin only
  // ever exposes the response completed under exactly that
  // (tenant, key) — eviction may forget results, never mix them up.
  struct Tagged {
    std::uint64_t tenant = 0;
    std::uint64_t key = 0;
    std::uint64_t nonce = 0;
  };
  DedupConfig cfg;
  cfg.ttl_ms = 40.0;
  // Entry cap above the key space (in-flight entries are un-evictable
  // and dominate the storm); the byte cap is what bites, keeping only a
  // handful of completed results alive at a time.
  cfg.max_entries = 120;
  cfg.max_bytes = 512;
  DedupCache<Tagged> cache(cfg);
  using State = DedupCache<Tagged>::State;

  FuzzRng rng(0xB0A710ADu);
  double now = 0.0;
  std::uint64_t nonce = 0;
  // Keys whose "execution" is still running — resolved (completed or
  // abandoned) by later iterations, the way drain_done resolves work
  // the pump marked executed earlier.
  // The canonical payload fingerprint for a (tenant, key): every
  // well-behaved resend in the storm carries exactly this hash.
  const auto hash_of = [](std::uint64_t tenant, std::uint64_t key) {
    return tenant ^ (key << 32) ^ 0x9E3779B97F4A7C15ull;
  };
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pending;
  const auto pop_pending = [&] {
    const std::size_t at = rng.below(pending.size());
    const auto tk = pending[at];
    pending[at] = pending.back();
    pending.pop_back();
    return tk;
  };
  for (int i = 0; i < 20000; ++i) {
    now += 0.25;
    const auto check = [&](const Tagged& got, std::uint64_t tenant,
                           std::uint64_t key) {
      ASSERT_EQ(got.tenant, tenant) << "iteration " << i;
      ASSERT_EQ(got.key, key) << "iteration " << i;
    };
    switch (rng.below(10)) {
      case 0:
        cache.sweep(now);
        break;
      case 1: {  // an execution finishes with a cacheable result
        if (pending.empty()) break;
        const auto [t, k] = pop_pending();
        cache.complete(t, k, Tagged{t, k, ++nonce}, 32 + rng.below(64),
                       now);
        // The fresh completion may already have been evicted under the
        // tight caps — losing a result is legal, mislabeling one isn't.
        if (const Tagged* hit = cache.lookup(t, k)) check(*hit, t, k);
        break;
      }
      case 2: {  // an execution ends retryable → the key is forgotten
        if (pending.empty()) break;
        const auto [t, k] = pop_pending();
        (void)cache.abandon(t, k);
        break;
      }
      case 3: {  // a corrupted resend: same key, different payload
        const std::uint64_t tenant = 1 + rng.below(4);
        const std::uint64_t key = 1 + rng.below(24);
        const State st =
            cache.begin(tenant, key, ~hash_of(tenant, key), now);
        // An existing key must answer Mismatch (KeyReuse on the wire),
        // never serve the original payload's result for foreign bytes.
        // A miss inserts the foreign hash as a legitimate first use —
        // abandon it so the canonical sends keep their key space.
        if (st == State::Fresh) (void)cache.abandon(tenant, key);
        break;
      }
      default: {  // a (re)send arrives, byte-identical to the original
        const std::uint64_t tenant = 1 + rng.below(4);
        const std::uint64_t key = 1 + rng.below(24);
        const State st =
            cache.begin(tenant, key, hash_of(tenant, key), now);
        ASSERT_NE(st, State::Mismatch)
            << "iteration " << i << ": canonical payload misjudged";
        if (st == State::Completed) {
          const Tagged* hit = cache.lookup(tenant, key);
          ASSERT_NE(hit, nullptr) << "iteration " << i;
          check(*hit, tenant, key);
          break;
        }
        if (st == State::InFlight) {
          // A resend overtaking its original: parks, never executes.
          cache.add_waiter(tenant, key, {rng.next(), rng.next()});
          break;
        }
        // Fresh: execute exactly once.
        ASSERT_EQ(cache.mark_executed(tenant, key), 0u)
            << "iteration " << i << ": fresh key was already executed";
        pending.emplace_back(tenant, key);
        break;
      }
    }
    // The whole key space is 4 tenants x 24 keys.
    ASSERT_LE(cache.stats().entries, 4u * 24u) << "iteration " << i;
  }
  // The storm must actually have exercised the interesting paths.
  const auto& st = cache.stats();
  EXPECT_GT(st.hits, 100u);
  EXPECT_GT(st.joins, 100u);
  EXPECT_GT(st.evictions, 100u);
  EXPECT_GT(st.mismatches, 100u);
  EXPECT_EQ(st.duplicate_executions, 0u);
}
