// Tests for the multi-stage solver: plan construction (Figure 1 workflow),
// end-to-end correctness over a workload grid, switch-point edge cases and
// the simulate/cost-only path.

#include <gtest/gtest.h>

#include <tuple>

#include "gpusim/launch.hpp"
#include "solver/gpu_solver.hpp"
#include "solver/plan.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"
#include "tuning/tuners.hpp"

namespace {

using namespace tda;
using namespace tda::solver;
using tridiag::make_diag_dominant;

// ---------- splits_needed ----------

TEST(Plan, SplitsNeeded) {
  EXPECT_EQ(splits_needed(256, 256), 0u);
  EXPECT_EQ(splits_needed(257, 256), 1u);
  EXPECT_EQ(splits_needed(512, 256), 1u);
  EXPECT_EQ(splits_needed(1024, 256), 2u);
  EXPECT_EQ(splits_needed(2 * 1024 * 1024, 1024), 11u);
  EXPECT_EQ(splits_needed(1, 256), 0u);
  EXPECT_EQ(splits_needed(1000, 256), 2u);  // ceil(1000/4)=250 <= 256
}

// ---------- plan construction ----------

TEST(Plan, SmallSystemsSkipSplitting) {
  SwitchPoints sp;
  sp.stage3_system_size = 256;
  auto plan = make_plan({1024, 256}, sp);
  EXPECT_EQ(plan.stage1_steps, 0u);
  EXPECT_EQ(plan.stage2_steps, 0u);
  EXPECT_EQ(plan.stage3_sub_size, 256u);
}

TEST(Plan, ManySystemsUseStageTwoOnly) {
  SwitchPoints sp;
  sp.stage1_target_systems = 16;
  sp.stage3_system_size = 256;
  auto plan = make_plan({1024, 1024}, sp);  // already 1024 systems
  EXPECT_EQ(plan.stage1_steps, 0u);
  EXPECT_EQ(plan.stage2_steps, 2u);
}

TEST(Plan, SingleHugeSystemStartsCooperative) {
  SwitchPoints sp;
  sp.stage1_target_systems = 16;
  sp.stage3_system_size = 1024;
  auto plan = make_plan({1, 2 * 1024 * 1024}, sp);
  EXPECT_EQ(plan.stage1_steps, 4u);  // 2^4 = 16 independent systems
  EXPECT_EQ(plan.stage2_steps, 7u);  // total 11 splits to reach 1024
  EXPECT_EQ(plan.stage3_sub_size, 1024u);
}

TEST(Plan, StageOneCappedByTotalSplits) {
  SwitchPoints sp;
  sp.stage1_target_systems = 1024;  // unreachable
  sp.stage3_system_size = 256;
  auto plan = make_plan({1, 1024}, sp);
  EXPECT_EQ(plan.stage1_steps, 2u);  // only 2 splits exist in total
  EXPECT_EQ(plan.stage2_steps, 0u);
}

TEST(Plan, NonPowerOfTwoSizes) {
  SwitchPoints sp;
  sp.stage3_system_size = 100;
  auto plan = make_plan({20, 777}, sp);
  // 777 -> 389 -> 195 -> 98
  EXPECT_EQ(plan.total_splits, 3u);
  EXPECT_EQ(plan.stage3_sub_size, 98u);
}

TEST(Plan, RejectsDegenerateInputs) {
  SwitchPoints sp;
  sp.stage3_system_size = 0;
  EXPECT_THROW((void)make_plan({1, 16}, sp), ContractError);
  SwitchPoints sp2;
  EXPECT_THROW((void)make_plan({0, 16}, sp2), ContractError);
}

// ---------- solver end-to-end over a workload grid ----------

class SolverGrid
    : public ::testing::TestWithParam<
          std::tuple<int, std::size_t, std::size_t>> {};

TEST_P(SolverGrid, ResidualTiny) {
  const auto [dev_idx, m, n] = GetParam();
  auto specs = gpusim::device_registry();
  gpusim::Device dev(specs[static_cast<std::size_t>(dev_idx)]);
  auto points = tuning::default_switch_points<double>();
  GpuTridiagonalSolver<double> solver(dev, points);

  auto batch = make_diag_dominant<double>(m, n, 100 + m * 7 + n);
  auto pristine = batch;
  auto stats = solver.solve(batch);
  EXPECT_GT(stats.total_ms, 0.0);
  EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-9)
      << "device=" << dev_idx << " m=" << m << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SolverGrid,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 17),
                       ::testing::Values(1, 2, 3, 100, 256, 1000, 4096)));

TEST(Solver, LargeSingleSystem) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  auto points = tuning::static_switch_points<double>(dev.query());
  GpuTridiagonalSolver<double> solver(dev, points);
  const std::size_t n = 1 << 17;  // 131072 equations
  auto batch = make_diag_dominant<double>(1, n, 555);
  auto pristine = batch;
  auto stats = solver.solve(batch);
  EXPECT_GT(stats.plan.stage1_steps, 0u);
  EXPECT_GT(stats.plan.stage2_steps, 0u);
  EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-9);
}

TEST(Solver, StatsBreakdownSumsToTotal) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  GpuTridiagonalSolver<double> solver(
      dev, tuning::default_switch_points<double>());
  auto batch = make_diag_dominant<double>(4, 4096, 7);
  auto stats = solver.solve(batch);
  EXPECT_NEAR(stats.total_ms,
              stats.stage1_ms + stats.stage2_ms + stats.stage3_ms, 1e-12);
  EXPECT_EQ(stats.kernel_launches,
            stats.plan.stage1_steps + (stats.plan.stage2_steps ? 1 : 0) + 1);
}

TEST(Solver, CoefficientArraysPreserved) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  GpuTridiagonalSolver<double> solver(
      dev, tuning::default_switch_points<double>());
  auto batch = make_diag_dominant<double>(2, 512, 8);
  const double b0 = batch.b()[100];
  const double d0 = batch.d()[100];
  solver.solve(batch);
  EXPECT_EQ(batch.b()[100], b0);
  EXPECT_EQ(batch.d()[100], d0);
}

TEST(Solver, RejectsOversizedStage3) {
  gpusim::Device dev(gpusim::geforce_8800_gtx());
  SwitchPoints sp;
  sp.stage3_system_size = 4096;  // way beyond 8800 capacity
  EXPECT_THROW(GpuTridiagonalSolver<double> solver(dev, sp), ContractError);
}

TEST(Solver, MaxOnChipSizeMatchesConfigHelper) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  GpuTridiagonalSolver<float> solver(
      dev, tuning::default_switch_points<float>());
  EXPECT_EQ(solver.max_on_chip_size(), 512u);
}

// ---------- switch-point extremes still give correct answers ----------

class SwitchPointExtremes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(SwitchPointExtremes, CorrectAnywhereInParameterSpace) {
  const auto [stage3, thomas] = GetParam();
  gpusim::Device dev(gpusim::geforce_gtx_470());
  SwitchPoints sp;
  sp.stage3_system_size = stage3;
  sp.thomas_switch = thomas;
  sp.stage1_target_systems = 8;
  GpuTridiagonalSolver<double> solver(dev, sp);
  auto batch = make_diag_dominant<double>(3, 1500, stage3 * 31 + thomas);
  auto pristine = batch;
  solver.solve(batch);
  EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Extremes, SwitchPointExtremes,
    ::testing::Combine(::testing::Values(2, 16, 256, 512),  // fp64 cap on 470
                       ::testing::Values(1, 2, 64, 1024)));

// ---------- simulate path ----------

TEST(Solver, SimulateMatchesFullSolveTime) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  GpuTridiagonalSolver<double> solver(
      dev, tuning::default_switch_points<double>());
  auto batch = make_diag_dominant<double>(8, 2048, 9);
  const double full_ms = solver.solve(batch).total_ms;
  const double sim_ms = solver.simulate_ms({8, 2048});
  EXPECT_DOUBLE_EQ(full_ms, sim_ms);
}

TEST(Solver, VariantChangesTimeNotResult) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  SwitchPoints sp = tuning::default_switch_points<double>();
  auto batch1 = make_diag_dominant<double>(4, 4096, 10);
  auto batch2 = batch1;
  auto pristine = batch1;

  sp.variant = kernels::LoadVariant::Strided;
  GpuTridiagonalSolver<double> s1(dev, sp);
  auto t1 = s1.solve(batch1);

  sp.variant = kernels::LoadVariant::Coalesced;
  GpuTridiagonalSolver<double> s2(dev, sp);
  auto t2 = s2.solve(batch2);

  EXPECT_NE(t1.total_ms, t2.total_ms);
  for (std::size_t k = 0; k < batch1.total_equations(); ++k)
    EXPECT_EQ(batch1.x()[k], batch2.x()[k]);
  EXPECT_LT(tridiag::batch_residual_inf(pristine, batch1.x()), 1e-9);
}

// ---------- double precision capacity is respected ----------

TEST(Solver, DoublePrecisionUsesSmallerOnChipSystems) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  auto spf = tuning::static_switch_points<float>(dev.query());
  auto spd = tuning::static_switch_points<double>(dev.query());
  EXPECT_EQ(spf.stage3_system_size, 512u);
  EXPECT_EQ(spd.stage3_system_size, 256u);
}

}  // namespace
