// Regression tests pinning the PAPER-SHAPE anchors the calibration
// establishes (DESIGN.md §6). If a model or kernel change moves an
// optimum away from the published observation, these fail — the figure
// harnesses print the same numbers, but only these gate CI.

#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "cpu/cost_model.hpp"
#include "gpusim/launch.hpp"
#include "kernels/device_batch.hpp"
#include "solver/gpu_solver.hpp"
#include "tuning/dynamic_tuner.hpp"
#include "tuning/tuners.hpp"

namespace {

using namespace tda;

double timed_ms(gpusim::Device& dev, kernels::DeviceBatch<float>& scratch,
                const solver::SwitchPoints& sp) {
  solver::GpuTridiagonalSolver<float> s(dev, sp);
  return s.run(scratch, kernels::ExecMode::CostOnly).total_ms;
}

// Best (stage3, thomas, variant) for a fixed stage-3 size over the
// standard Fig-5 workload.
double best_at_stage3(gpusim::Device& dev,
                      kernels::DeviceBatch<float>& scratch,
                      std::size_t stage3) {
  double best = std::numeric_limits<double>::infinity();
  for (auto variant :
       {kernels::LoadVariant::Strided, kernels::LoadVariant::Coalesced}) {
    for (std::size_t th = 16; th <= stage3; th *= 2) {
      solver::SwitchPoints sp =
          tuning::static_switch_points<float>(dev.query());
      sp.stage3_system_size = stage3;
      sp.thomas_switch = th;
      sp.variant = variant;
      best = std::min(best, timed_ms(dev, scratch, sp));
    }
  }
  return best;
}

// ---------- Figure 5 anchors ----------

TEST(PaperAnchors, Fig5_8800Prefers256Over128) {
  gpusim::Device dev(gpusim::geforce_8800_gtx());
  kernels::DeviceBatch<float> scratch(2048, 2048);
  EXPECT_LT(best_at_stage3(dev, scratch, 256),
            best_at_stage3(dev, scratch, 128));
}

TEST(PaperAnchors, Fig5_280TopTwoComparable) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  kernels::DeviceBatch<float> scratch(2048, 2048);
  const double at256 = best_at_stage3(dev, scratch, 256);
  const double at512 = best_at_stage3(dev, scratch, 512);
  // "switching at system sizes 256 and 512 have comparable performance"
  EXPECT_LT(std::abs(at256 - at512) / std::min(at256, at512), 0.25);
}

TEST(PaperAnchors, Fig5_470Prefers512EvenThough1024Fits) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  kernels::DeviceBatch<float> scratch(2048, 2048);
  ASSERT_EQ(kernels::max_shared_system_size(dev.query(), 4), 1024u);
  EXPECT_LT(best_at_stage3(dev, scratch, 512),
            best_at_stage3(dev, scratch, 1024));
}

// ---------- Figure 6 anchors ----------

std::size_t best_thomas_switch(const gpusim::DeviceSpec& spec,
                               std::size_t n_onchip) {
  gpusim::Device dev(spec);
  kernels::DeviceBatch<float> scratch(4096, n_onchip);
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_th = 0;
  for (std::size_t th = 16; th <= 512 && th <= n_onchip; th *= 2) {
    solver::SwitchPoints sp =
        tuning::static_switch_points<float>(dev.query());
    sp.stage3_system_size = n_onchip;
    sp.thomas_switch = th;
    const double ms = timed_ms(dev, scratch, sp);
    if (ms < best) {
      best = ms;
      best_th = th;
    }
  }
  return best_th;
}

TEST(PaperAnchors, Fig6_8800OptimumIs64) {
  EXPECT_EQ(best_thomas_switch(gpusim::geforce_8800_gtx(), 256), 64u);
}

TEST(PaperAnchors, Fig6_470OptimumIs128) {
  EXPECT_EQ(best_thomas_switch(gpusim::geforce_gtx_470(), 512), 128u);
}

// ---------- Figure 7 anchor: the tuning ordering ----------

TEST(PaperAnchors, Fig7_DynamicBeatsUntunedSubstantially) {
  // "an average of 32% against the non-tuned performance"; assert a
  // healthy band on the aggregate over the three devices at 2Kx2K.
  double gain_sum = 0.0;
  int count = 0;
  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    kernels::DeviceBatch<float> scratch(2048, 2048);
    tuning::DynamicTuner<float> tuner(dev);
    auto dyn = tuner.tune({2048, 2048});
    const double t_def =
        timed_ms(dev, scratch, tuning::default_switch_points<float>());
    const double t_dyn = timed_ms(dev, scratch, dyn.points);
    gain_sum += 1.0 - t_dyn / t_def;
    ++count;
  }
  const double avg_gain = gain_sum / count;
  EXPECT_GT(avg_gain, 0.10);
  EXPECT_LT(avg_gain, 0.60);
}

// ---------- Figure 8 anchors ----------

TEST(PaperAnchors, Fig8_GpuWinsBatchesCpuWinsOneHugeSystem) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  const auto cpu_spec = cpu::paper_core_i5();

  auto gpu_ms = [&](std::size_t m, std::size_t n) {
    tuning::DynamicTuner<float> tuner(dev);
    auto dyn = tuner.tune({m, n});
    kernels::DeviceBatch<float> scratch(m, n);
    return timed_ms(dev, scratch, dyn.points);
  };

  // 1Kx1K: paper 11x; accept a generous band around it.
  const double s1k = cpu::mkl_model_ms(cpu_spec, 1024, 1024, 4) /
                     gpu_ms(1024, 1024);
  EXPECT_GT(s1k, 6.0);
  EXPECT_LT(s1k, 25.0);

  // 1x2M: the CPU must WIN (paper 0.7x).
  const double s2m =
      cpu::mkl_model_ms(cpu_spec, 1, 2 * 1024 * 1024, 4) /
      gpu_ms(1, 2 * 1024 * 1024);
  EXPECT_LT(s2m, 1.0);
  EXPECT_GT(s2m, 0.4);
}

TEST(PaperAnchors, Fig8_SpeedupShrinksAsBatchesGrow) {
  // 11x -> 7x -> 6x in the paper: the advantage must decrease with size.
  gpusim::Device dev(gpusim::geforce_gtx_470());
  const auto cpu_spec = cpu::paper_core_i5();
  auto speedup = [&](std::size_t mn) {
    tuning::DynamicTuner<float> tuner(dev);
    auto dyn = tuner.tune({mn, mn});
    kernels::DeviceBatch<float> scratch(mn, mn);
    return cpu::mkl_model_ms(cpu_spec, mn, mn, 4) /
           timed_ms(dev, scratch, dyn.points);
  };
  const double s1 = speedup(1024);
  const double s2 = speedup(2048);
  EXPECT_GT(s1, s2);
}

}  // namespace
