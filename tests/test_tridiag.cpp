// Unit & property tests for the tridiagonal algorithm core: Thomas, PCR,
// CR, the two hybrids, generators and verification, against the dense
// Gaussian-elimination reference.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "tridiag/batch.hpp"
#include "tridiag/cr.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/hybrid.hpp"
#include "tridiag/pcr.hpp"
#include "tridiag/thomas.hpp"
#include "tridiag/verify.hpp"

namespace {

using namespace tda;
using namespace tda::tridiag;

// Helper: wrap contiguous vectors in a SystemView.
template <typename T>
SystemView<T> view_of(std::vector<T>& a, std::vector<T>& b, std::vector<T>& c,
                      std::vector<T>& d) {
  const std::size_t n = b.size();
  return SystemView<T>{StridedView<T>(a.data(), n, 1),
                       StridedView<T>(b.data(), n, 1),
                       StridedView<T>(c.data(), n, 1),
                       StridedView<T>(d.data(), n, 1)};
}

template <typename T>
SystemView<const T> const_view(const SystemView<T>& v) {
  return SystemView<const T>{v.a.as_const(), v.b.as_const(), v.c.as_const(),
                             v.d.as_const()};
}

// Scratch of the same shape as a system of size n.
template <typename T>
struct Scratch {
  explicit Scratch(std::size_t n) : buf(4 * n), n_(n) {}
  SystemView<T> view() {
    return SystemView<T>{StridedView<T>(buf.data(), n_, 1),
                         StridedView<T>(buf.data() + n_, n_, 1),
                         StridedView<T>(buf.data() + 2 * n_, n_, 1),
                         StridedView<T>(buf.data() + 3 * n_, n_, 1)};
  }
  AlignedBuffer<T> buf;
  std::size_t n_;
};

// ---------- batch container ----------

TEST(TridiagBatch, ShapeAndLayout) {
  TridiagBatch<double> batch(3, 5);
  EXPECT_EQ(batch.num_systems(), 3u);
  EXPECT_EQ(batch.system_size(), 5u);
  EXPECT_EQ(batch.total_equations(), 15u);
  batch.b()[7] = 4.0;  // system 1, equation 2
  auto sys = batch.system(1);
  EXPECT_EQ(sys.b[2], 4.0);
}

TEST(TridiagBatch, NormalizeBoundaries) {
  TridiagBatch<double> batch(2, 4);
  for (auto& v : batch.a()) v = 1.0;
  for (auto& v : batch.c()) v = 1.0;
  batch.normalize_boundaries();
  EXPECT_EQ(batch.a()[0], 0.0);
  EXPECT_EQ(batch.a()[4], 0.0);
  EXPECT_EQ(batch.c()[3], 0.0);
  EXPECT_EQ(batch.c()[7], 0.0);
  EXPECT_EQ(batch.a()[1], 1.0);
}

TEST(TridiagBatch, RejectsEmpty) {
  EXPECT_THROW(TridiagBatch<float>(0, 4), ContractError);
  EXPECT_THROW(TridiagBatch<float>(4, 0), ContractError);
}

// ---------- generators ----------

TEST(Generators, DiagDominantIsDominant) {
  auto batch = make_diag_dominant<double>(4, 64, 42);
  auto a = batch.a();
  auto b = batch.b();
  auto c = batch.c();
  for (std::size_t k = 0; k < batch.total_equations(); ++k) {
    EXPECT_GT(std::abs(b[k]), std::abs(a[k]) + std::abs(c[k]));
  }
}

TEST(Generators, BoundariesAreZero) {
  auto batch = make_diag_dominant<double>(3, 16, 1);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(batch.a()[s * 16], 0.0);
    EXPECT_EQ(batch.c()[s * 16 + 15], 0.0);
  }
}

TEST(Generators, DeterministicInSeed) {
  auto b1 = make_diag_dominant<float>(2, 32, 777);
  auto b2 = make_diag_dominant<float>(2, 32, 777);
  for (std::size_t k = 0; k < b1.total_equations(); ++k) {
    EXPECT_EQ(b1.b()[k], b2.b()[k]);
    EXPECT_EQ(b1.d()[k], b2.d()[k]);
  }
}

TEST(Generators, SeedChangesData) {
  auto b1 = make_diag_dominant<float>(1, 32, 1);
  auto b2 = make_diag_dominant<float>(1, 32, 2);
  bool any_diff = false;
  for (std::size_t k = 0; k < 32; ++k) {
    if (b1.d()[k] != b2.d()[k]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, PoissonStencil) {
  auto batch = make_poisson<double>(1, 8, 3);
  EXPECT_EQ(batch.b()[3], 2.0);
  EXPECT_EQ(batch.a()[3], -1.0);
  EXPECT_EQ(batch.c()[3], -1.0);
  EXPECT_EQ(batch.a()[0], 0.0);
  EXPECT_EQ(batch.c()[7], 0.0);
}

TEST(Generators, ToeplitzStencil) {
  auto batch = make_toeplitz<double>(1, 6, -1.0, 4.0, -2.0, 5);
  EXPECT_EQ(batch.a()[2], -1.0);
  EXPECT_EQ(batch.b()[2], 4.0);
  EXPECT_EQ(batch.c()[2], -2.0);
}

TEST(Generators, KnownSolutionRoundTrip) {
  std::vector<double> x_true;
  auto batch = make_with_known_solution<double>(2, 33, 11, &x_true);
  ASSERT_EQ(x_true.size(), 66u);
  // d was built as A*x: residual of x_true must be ~0.
  EXPECT_LT(batch_residual_inf(batch, std::span<const double>(x_true)),
            1e-12);
}

// ---------- dense reference sanity ----------

TEST(DenseSolve, Solves2x2) {
  std::vector<double> a{0, 1}, b{2, 3}, c{1, 0}, d{3, 4};
  auto v = view_of(a, b, c, d);
  auto x = dense_solve(const_view(v));
  // [2 1; 1 3] x = [3;4] -> x = [1;1]
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(DenseSolve, HandlesPivoting) {
  // b[0] = 0 forces a row swap.
  std::vector<double> a{0, 1}, b{0, 1}, c{2, 0}, d{2, 2};
  auto v = view_of(a, b, c, d);
  auto x = dense_solve(const_view(v));
  // [0 2; 1 1] x = [2;2] -> x = [1;1]
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

// ---------- Thomas ----------

TEST(Thomas, MatchesDenseOnSmallSystem) {
  auto batch = make_diag_dominant<double>(1, 9, 5);
  auto sys = batch.system(0);
  auto ref = dense_solve(const_view(sys));
  auto x = batch.solution(0);
  ASSERT_TRUE(thomas_solve_inplace(sys, x));
  for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(x[i], ref[i], 1e-10);
}

TEST(Thomas, SizeOne) {
  std::vector<double> a{0}, b{4}, c{0}, d{8};
  std::vector<double> x(1);
  auto v = view_of(a, b, c, d);
  ASSERT_TRUE(thomas_solve_inplace(v, StridedView<double>(x.data(), 1, 1)));
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(Thomas, DetectsZeroPivot) {
  std::vector<double> a{0, 1}, b{0, 1}, c{1, 0}, d{1, 1};
  std::vector<double> x(2);
  auto v = view_of(a, b, c, d);
  EXPECT_FALSE(thomas_solve_inplace(v, StridedView<double>(x.data(), 2, 1)));
}

TEST(Thomas, NonDestructiveVariantPreservesInput) {
  auto batch = make_diag_dominant<double>(1, 16, 6);
  auto sys = batch.system(0);
  std::vector<double> c_before(16), cs(16), ds(16), x(16);
  for (std::size_t i = 0; i < 16; ++i) c_before[i] = sys.c[i];
  ASSERT_TRUE(thomas_solve(const_view(sys),
                           StridedView<double>(x.data(), 16, 1),
                           StridedView<double>(cs.data(), 16, 1),
                           StridedView<double>(ds.data(), 16, 1)));
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(sys.c[i], c_before[i]);
  EXPECT_LT(residual_inf(const_view(sys),
                         StridedView<const double>(x.data(), 16, 1)),
            1e-12);
}

TEST(Thomas, WorksOnStridedViews) {
  // Solve the even-indexed half of an interleaved layout.
  auto batch = make_diag_dominant<double>(1, 16, 7);
  // Copy system into a stride-2 arrangement.
  std::vector<double> a(32), b(32), c(32), d(32), x(32);
  auto sys = batch.system(0);
  for (std::size_t i = 0; i < 16; ++i) {
    a[2 * i] = sys.a[i];
    b[2 * i] = sys.b[i];
    c[2 * i] = sys.c[i];
    d[2 * i] = sys.d[i];
  }
  SystemView<double> sv{StridedView<double>(a.data(), 16, 2),
                        StridedView<double>(b.data(), 16, 2),
                        StridedView<double>(c.data(), 16, 2),
                        StridedView<double>(d.data(), 16, 2)};
  ASSERT_TRUE(thomas_solve_inplace(sv, StridedView<double>(x.data(), 16, 2)));
  auto fresh = make_diag_dominant<double>(1, 16, 7);
  auto ref_sys = fresh.system(0);
  auto ref = dense_solve(const_view(ref_sys));
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(x[2 * i], ref[i], 1e-10);
}

// ---------- PCR ----------

TEST(Pcr, StepsToDecouple) {
  EXPECT_EQ(pcr_steps_to_decouple(1), 0u);
  EXPECT_EQ(pcr_steps_to_decouple(2), 1u);
  EXPECT_EQ(pcr_steps_to_decouple(8), 3u);
  EXPECT_EQ(pcr_steps_to_decouple(9), 4u);
  EXPECT_EQ(pcr_steps_to_decouple(1024), 10u);
}

TEST(Pcr, OneStepDecouplesEvenOdd) {
  // After a shift-1 step, even equations must not reference odd unknowns:
  // solve the even subsystem alone and check against the full solution.
  const std::size_t n = 10;
  auto batch = make_diag_dominant<double>(1, n, 9);
  auto sys = batch.system(0);
  auto full_ref = dense_solve(const_view(sys));

  Scratch<double> scratch(n);
  auto dst = scratch.view();
  pcr_step(const_view(sys), dst, 1);

  // Even subsystem of the POST-step coefficients, solved independently.
  auto even = dst.subsystem(1, 0);
  auto even_ref = dense_solve(const_view(even));
  for (std::size_t i = 0; i < even.size(); ++i) {
    EXPECT_NEAR(even_ref[i], full_ref[2 * i], 1e-9);
  }
  // Odd subsystem too.
  auto odd = dst.subsystem(1, 1);
  auto odd_ref = dense_solve(const_view(odd));
  for (std::size_t i = 0; i < odd.size(); ++i) {
    EXPECT_NEAR(odd_ref[i], full_ref[2 * i + 1], 1e-9);
  }
}

TEST(Pcr, TwoStepsQuarterTheSystemAndPreserveSolutions) {
  // After shift-1 then shift-2 steps the equations couple at distance 4:
  // the four interleaved residue-class subsystems are independent
  // tridiagonal systems whose solutions must equal the original's.
  const std::size_t n = 13;
  auto batch = make_diag_dominant<double>(1, n, 21);
  auto sys = batch.system(0);
  auto ref = dense_solve(const_view(sys));
  Scratch<double> s1(n), s2(n);
  auto mid = s1.view();
  auto fin = s2.view();
  pcr_step(const_view(sys), mid, 1);
  pcr_step(const_view(mid), fin, 2);
  for (std::size_t p = 0; p < 4; ++p) {
    auto sub = fin.subsystem(2, p);
    auto sub_ref = dense_solve(const_view(sub));
    for (std::size_t i = 0; i < sub.size(); ++i) {
      EXPECT_NEAR(sub_ref[i], ref[p + 4 * i], 1e-9)
          << "p=" << p << " i=" << i;
    }
  }
}

TEST(Pcr, FullSolveMatchesDense) {
  for (std::size_t n : {1u, 2u, 3u, 7u, 8u, 16u, 31u, 64u, 100u}) {
    auto batch = make_diag_dominant<double>(1, n, 100 + n);
    auto pristine = make_diag_dominant<double>(1, n, 100 + n);
    auto sys = batch.system(0);
    auto ref = dense_solve(const_view(pristine.system(0)));
    Scratch<double> scratch(n);
    auto x = batch.solution(0);
    pcr_solve(sys, scratch.view(), x);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(x[i], ref[i], 1e-8) << "n=" << n << " i=" << i;
  }
}

TEST(Pcr, RangeStepEqualsFullStep) {
  const std::size_t n = 17;
  auto batch = make_diag_dominant<double>(1, n, 31);
  auto sys = batch.system(0);
  Scratch<double> s1(n), s2(n);
  pcr_step(const_view(sys), s1.view(), 2);
  // Chunked: three ranges.
  auto dst2 = s2.view();
  pcr_step_range(const_view(sys), dst2, 2, 0, 5);
  pcr_step_range(const_view(sys), dst2, 2, 5, 12);
  pcr_step_range(const_view(sys), dst2, 2, 12, 17);
  auto v1 = s1.view();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(v1.b[i], dst2.b[i]);
    EXPECT_DOUBLE_EQ(v1.d[i], dst2.d[i]);
  }
}

// ---------- CR ----------

TEST(Cr, MatchesDenseAcrossSizes) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 33u, 128u}) {
    auto batch = make_diag_dominant<double>(1, n, 200 + n);
    auto pristine = make_diag_dominant<double>(1, n, 200 + n);
    auto sys = batch.system(0);
    auto ref = dense_solve(const_view(pristine.system(0)));
    auto x = batch.solution(0);
    cr_solve(sys, x);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(x[i], ref[i], 1e-8) << "n=" << n << " i=" << i;
  }
}

TEST(Cr, PoissonSystemExactlySolvable) {
  const std::size_t n = 64;
  auto batch = make_poisson<double>(1, n, 17);
  auto pristine = make_poisson<double>(1, n, 17);
  auto sys = batch.system(0);
  auto x = batch.solution(0);
  cr_solve(sys, x);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = x[i];
  EXPECT_LT(batch_residual_inf(pristine, std::span<const double>(xs)), 1e-10);
}

// ---------- PCR-Thomas hybrid ----------

class PcrThomasSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(PcrThomasSweep, MatchesDense) {
  const auto [n, target] = GetParam();
  auto batch = make_diag_dominant<double>(1, n, 300 + n + target);
  auto pristine = make_diag_dominant<double>(1, n, 300 + n + target);
  auto sys = batch.system(0);
  auto ref = dense_solve(const_view(pristine.system(0)));
  Scratch<double> scratch(n);
  auto x = batch.solution(0);
  pcr_thomas_solve(sys, scratch.view(), x, target);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[i], ref[i], 1e-8) << "n=" << n << " target=" << target;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSwitches, PcrThomasSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 8, 17, 64, 100, 256),
                       ::testing::Values(1, 2, 4, 16, 64, 1024)));

TEST(PcrThomas, SplitStepsCapped) {
  // Never splits below one equation per subsystem.
  EXPECT_EQ(pcr_thomas_split_steps(8, 1024), 3u);
  EXPECT_EQ(pcr_thomas_split_steps(8, 4), 2u);
  EXPECT_EQ(pcr_thomas_split_steps(1, 64), 0u);
  EXPECT_EQ(pcr_thomas_split_steps(1024, 64), 6u);
}

// ---------- CR-PCR hybrid (Zhang et al. baseline) ----------

class CrPcrSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(CrPcrSweep, MatchesDense) {
  const auto [n, threshold] = GetParam();
  auto batch = make_diag_dominant<double>(1, n, 400 + n + threshold);
  auto pristine = make_diag_dominant<double>(1, n, 400 + n + threshold);
  auto sys = batch.system(0);
  auto ref = dense_solve(const_view(pristine.system(0)));
  auto x = batch.solution(0);
  cr_pcr_solve(sys, x, threshold);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[i], ref[i], 1e-8) << "n=" << n << " thr=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndThresholds, CrPcrSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 8, 17, 64, 100, 255, 256),
                       ::testing::Values(1, 2, 8, 32, 512)));

// ---------- float precision paths ----------

TEST(FloatPath, AllAlgorithmsAgree) {
  const std::size_t n = 128;
  auto make = [&] { return make_diag_dominant<float>(1, n, 555); };

  auto b_thomas = make();
  auto s = b_thomas.system(0);
  ASSERT_TRUE(thomas_solve_inplace(s, b_thomas.solution(0)));

  auto b_pcr = make();
  {
    AlignedBuffer<float> buf(4 * n);
    SystemView<float> scratch{StridedView<float>(buf.data(), n, 1),
                              StridedView<float>(buf.data() + n, n, 1),
                              StridedView<float>(buf.data() + 2 * n, n, 1),
                              StridedView<float>(buf.data() + 3 * n, n, 1)};
    pcr_solve(b_pcr.system(0), scratch, b_pcr.solution(0));
  }

  auto b_cr = make();
  cr_solve(b_cr.system(0), b_cr.solution(0));

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(b_pcr.x()[i], b_thomas.x()[i], 2e-4f);
    EXPECT_NEAR(b_cr.x()[i], b_thomas.x()[i], 2e-4f);
  }
}

// ---------- residual / verification ----------

TEST(Verify, ResidualZeroForExactSolution) {
  std::vector<double> x_true;
  auto batch = make_with_known_solution<double>(1, 50, 77, &x_true);
  EXPECT_LT(batch_residual_inf(batch, std::span<const double>(x_true)),
            1e-13);
}

TEST(Verify, ResidualLargeForWrongSolution) {
  std::vector<double> x_true;
  auto batch = make_with_known_solution<double>(1, 50, 78, &x_true);
  for (auto& v : x_true) v += 1.0;
  EXPECT_GT(batch_residual_inf(batch, std::span<const double>(x_true)),
            1e-3);
}

// ---------- property sweep: every solver, random dominant systems ----------

class AllSolversProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllSolversProperty, ResidualTiny) {
  const std::size_t seed = GetParam();
  Rng shape_rng(seed);
  const std::size_t n = 1 + shape_rng.below(300);
  auto pristine = make_diag_dominant<double>(1, n, seed * 13 + 1);

  auto run_and_check = [&](auto solve_fn, const char* name) {
    auto batch = make_diag_dominant<double>(1, n, seed * 13 + 1);
    solve_fn(batch);
    std::vector<double> xs(n);
    for (std::size_t i = 0; i < n; ++i) xs[i] = batch.x()[i];
    EXPECT_LT(batch_residual_inf(pristine, std::span<const double>(xs)),
              1e-10)
        << name << " n=" << n << " seed=" << seed;
  };

  run_and_check(
      [&](auto& b) {
        ASSERT_TRUE(thomas_solve_inplace(b.system(0), b.solution(0)));
      },
      "thomas");
  run_and_check(
      [&](auto& b) {
        Scratch<double> sc(n);
        pcr_solve(b.system(0), sc.view(), b.solution(0));
      },
      "pcr");
  run_and_check([&](auto& b) { cr_solve(b.system(0), b.solution(0)); },
                "cr");
  run_and_check(
      [&](auto& b) {
        Scratch<double> sc(n);
        pcr_thomas_solve(b.system(0), sc.view(), b.solution(0), 16);
      },
      "pcr-thomas");
  run_and_check([&](auto& b) { cr_pcr_solve(b.system(0), b.solution(0), 8); },
                "cr-pcr");
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, AllSolversProperty,
                         ::testing::Range<std::size_t>(1, 21));

}  // namespace
