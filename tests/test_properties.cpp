// Deterministic fuzz: randomized workload shapes, generators, devices and
// switch points, always cross-checked against the pivoting CPU solver.
// These tests are the library's broadest net — every case exercises
// upload, splitting, the base kernel, download and verification.

#include <gtest/gtest.h>

#include <vector>

#include "cpu/batch_solver.hpp"
#include "gpusim/launch.hpp"
#include "solver/gpu_solver.hpp"
#include "tridiag/diagnostics.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"
#include "tuning/tuners.hpp"

namespace {

using namespace tda;

// One fuzz iteration: random shape, random generator, random legal
// switch points, random device; GPU and CPU must agree.
class SolverFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverFuzz, GpuMatchesPivotingCpu) {
  Rng rng(GetParam() * 0x9E3779B9u + 7);

  // Shape: n in [1, 5000], m in [1, 40], skewed toward interesting sizes.
  const std::size_t n = 1 + rng.below(rng.below(2) ? 300 : 5000);
  const std::size_t m = 1 + rng.below(40);

  // Generator.
  tridiag::TridiagBatch<double> batch(1, 1);
  switch (rng.below(4)) {
    case 0:
      batch = tridiag::make_diag_dominant<double>(m, n, GetParam(), 1.5);
      break;
    case 1:
      batch = tridiag::make_poisson<double>(m, n, GetParam());
      break;
    case 2:
      batch = tridiag::make_spline<double>(m, n, GetParam());
      break;
    default:
      batch = tridiag::make_toeplitz<double>(m, n, -1.0, 3.0, -1.5,
                                             GetParam());
      break;
  }
  auto pristine = batch;
  auto cpu_batch = batch;

  // Device + legal random switch points.
  auto specs = gpusim::device_registry();
  gpusim::Device dev(specs[rng.below(specs.size())]);
  const std::size_t cap =
      kernels::max_shared_system_size(dev.query(), sizeof(double));
  solver::SwitchPoints sp;
  sp.stage3_system_size = std::size_t{1} << (1 + rng.below(10));
  while (sp.stage3_system_size > cap) sp.stage3_system_size /= 2;
  sp.thomas_switch = std::size_t{1} << rng.below(10);
  sp.stage1_target_systems = std::size_t{1} << rng.below(9);
  sp.variant = rng.below(2) ? kernels::LoadVariant::Strided
                            : kernels::LoadVariant::Coalesced;

  solver::GpuTridiagonalSolver<double> gpu(dev, sp);
  gpu.solve(batch);

  cpu::BatchCpuSolver host(1);
  auto st = host.solve(cpu_batch);
  ASSERT_EQ(st.failures, 0u);

  // Both residuals tiny; solutions agree to solver tolerance.
  EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-8)
      << "seed=" << GetParam() << " m=" << m << " n=" << n << " "
      << solver::describe(sp) << " dev=" << dev.spec().name;
  EXPECT_LT(tridiag::batch_residual_inf(pristine, cpu_batch.x()), 1e-8);
  double worst = 0.0;
  for (std::size_t k = 0; k < batch.total_equations(); ++k) {
    worst = std::max(worst, std::abs(batch.x()[k] - cpu_batch.x()[k]));
  }
  EXPECT_LT(worst, 1e-6) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz,
                         ::testing::Range<std::uint64_t>(0, 40));

// Diagnostics gate: every generator the fuzz uses must pass the
// pre-flight checks the library recommends before pivot-free solving.
TEST(SolverFuzzPreflight, FuzzGeneratorsAreSafeOrBorderline) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto dom = tridiag::make_diag_dominant<double>(3, 100, seed, 1.5);
    EXPECT_TRUE(tridiag::diagnose(dom).strictly_dominant);
    auto poi = tridiag::make_poisson<double>(3, 100, seed);
    EXPECT_GE(tridiag::diagnose(poi).dominance, 1.0);
    auto spl = tridiag::make_spline<double>(3, 100, seed);
    EXPECT_TRUE(tridiag::diagnose(spl).strictly_dominant);
  }
}

// Simulated time must be positive, finite, and monotone-ish in problem
// size for a fixed configuration (cost-model sanity under fuzz).
class CostMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CostMonotonicity, BiggerWorkloadsCostMore) {
  auto specs = gpusim::device_registry();
  gpusim::Device dev(specs[static_cast<std::size_t>(GetParam())]);
  solver::GpuTridiagonalSolver<float> s(
      dev, tuning::default_switch_points<float>());
  // Monotonicity only holds on a SATURATED machine: below saturation,
  // doubling the work can more than double the achieved bandwidth
  // (latency hiding) and the bigger workload finishes sooner — the very
  // effect the stage-1/2 switch points exist to manage. Start well above
  // saturation on every registry device.
  double prev = 0.0;
  for (std::size_t scale = 1; scale <= 16; scale *= 2) {
    const double ms = s.simulate_ms({256 * scale, 1024});
    EXPECT_GT(ms, prev);
    EXPECT_TRUE(std::isfinite(ms));
    prev = ms;
  }
  // The n sweep must run on a FULL machine (m large): at small m, growing
  // n can get cheaper because splitting manufactures parallelism — that
  // is the whole point of the multi-stage design, not a model bug.
  prev = 0.0;
  for (std::size_t scale = 1; scale <= 16; scale *= 2) {
    const double ms = s.simulate_ms({256, 1024 * scale});
    EXPECT_GT(ms, prev);
    prev = ms;
  }
}

INSTANTIATE_TEST_SUITE_P(Devices, CostMonotonicity, ::testing::Values(0, 1, 2));

// The solver must reject only what it documents rejecting, and never
// crash: sweep degenerate shapes.
TEST(SolverEdges, DegenerateShapesHandled) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  solver::GpuTridiagonalSolver<double> s(
      dev, tuning::default_switch_points<double>());
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    for (std::size_t m : {1u, 2u}) {
      auto batch = tridiag::make_diag_dominant<double>(m, n, n * 7 + m);
      auto pristine = batch;
      EXPECT_NO_THROW(s.solve(batch)) << "m=" << m << " n=" << n;
      EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-10);
    }
  }
}

// Ill-conditioned (weakly dominant, large) systems: the solve should
// still produce small residuals in double precision.
TEST(SolverEdges, LargePoissonStaysAccurate) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  solver::GpuTridiagonalSolver<double> s(
      dev, tuning::static_switch_points<double>(dev.query()));
  auto batch = tridiag::make_poisson<double>(2, 1 << 15, 3);
  auto pristine = batch;
  s.solve(batch);
  EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-7);
}

}  // namespace
