// Tests for the batch diagnostics: dominance scanning, zero-diagonal
// detection, boundary-convention checks and condition estimation.

#include <gtest/gtest.h>

#include <cmath>

#include "tridiag/diagnostics.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"

namespace {

using namespace tda;
using namespace tda::tridiag;

TEST(Diagnose, DominantBatchIsDominant) {
  auto batch = make_diag_dominant<double>(4, 64, 1, /*dominance=*/2.0);
  auto d = diagnose(batch);
  EXPECT_TRUE(d.strictly_dominant);
  EXPECT_GT(d.dominance, 1.0);
  EXPECT_FALSE(d.zero_diagonal);
  EXPECT_TRUE(d.boundaries_normalized);
}

TEST(Diagnose, PoissonIsExactlyBorderline) {
  // Interior rows of the Poisson stencil have |b| = |a|+|c| = 2: the
  // dominance ratio is exactly 1 (weakly, not strictly, dominant).
  auto batch = make_poisson<double>(1, 32, 2);
  auto d = diagnose(batch);
  EXPECT_DOUBLE_EQ(d.dominance, 1.0);
  EXPECT_FALSE(d.strictly_dominant);
}

TEST(Diagnose, FindsWorstRow) {
  auto batch = make_diag_dominant<double>(2, 16, 3, 4.0);
  // Sabotage one row.
  batch.b()[16 + 5] = 0.01;
  auto d = diagnose(batch);
  EXPECT_EQ(d.worst_system, 1u);
  EXPECT_EQ(d.worst_equation, 5u);
  EXPECT_FALSE(d.strictly_dominant);
}

TEST(Diagnose, DetectsZeroDiagonal) {
  auto batch = make_diag_dominant<double>(1, 8, 4);
  batch.b()[3] = 0.0;
  auto d = diagnose(batch);
  EXPECT_TRUE(d.zero_diagonal);
  EXPECT_FALSE(d.strictly_dominant);
}

TEST(Diagnose, DetectsUnnormalizedBoundaries) {
  auto batch = make_diag_dominant<double>(1, 8, 5);
  batch.a()[0] = 0.5;
  auto d = diagnose(batch);
  EXPECT_FALSE(d.boundaries_normalized);
}

TEST(Diagnose, ReportString) {
  auto batch = make_diag_dominant<double>(1, 8, 6);
  auto d = diagnose(batch);
  const auto s = to_string(d);
  EXPECT_NE(s.find("dominance="), std::string::npos);
  EXPECT_NE(s.find("strictly dominant"), std::string::npos);
}

// ---------- condition estimation ----------

TEST(Condition, IdentityIsPerfectlyConditioned) {
  TridiagBatch<double> batch(1, 16);
  for (auto& v : batch.b()) v = 1.0;
  auto sys = batch.system(0);
  SystemView<const double> csys{sys.a.as_const(), sys.b.as_const(),
                                sys.c.as_const(), sys.d.as_const()};
  EXPECT_NEAR(estimate_condition(csys), 1.0, 1e-12);
}

TEST(Condition, ScalingInvariant) {
  // cond(alpha * A) == cond(A).
  auto b1 = make_diag_dominant<double>(1, 64, 7);
  auto b2 = b1;
  for (auto& v : b2.a()) v *= 100.0;
  for (auto& v : b2.b()) v *= 100.0;
  for (auto& v : b2.c()) v *= 100.0;
  auto s1 = b1.system(0);
  auto s2 = b2.system(0);
  const double c1 = estimate_condition(SystemView<const double>{
      s1.a.as_const(), s1.b.as_const(), s1.c.as_const(), s1.d.as_const()});
  const double c2 = estimate_condition(SystemView<const double>{
      s2.a.as_const(), s2.b.as_const(), s2.c.as_const(), s2.d.as_const()});
  EXPECT_NEAR(c1, c2, c1 * 1e-10);
}

TEST(Condition, PoissonGrowsQuadratically) {
  // cond(Poisson_n) ~ (n/pi)^2 * 4: the estimate must reflect the growth.
  auto small = make_poisson<double>(1, 16, 8);
  auto large = make_poisson<double>(1, 64, 9);
  auto ss = small.system(0);
  auto sl = large.system(0);
  const double cs = estimate_condition(SystemView<const double>{
      ss.a.as_const(), ss.b.as_const(), ss.c.as_const(), ss.d.as_const()});
  const double cl = estimate_condition(SystemView<const double>{
      sl.a.as_const(), sl.b.as_const(), sl.c.as_const(), sl.d.as_const()});
  EXPECT_GT(cl, 10.0 * cs);  // 16x growth expected for 4x the size
  EXPECT_GT(cs, 50.0);       // (16/pi)^2 * 4 ~ 104
  EXPECT_LT(cs, 250.0);
}

TEST(Condition, LowerBoundsTrueCondition) {
  // The estimate is a lower bound on ||A||_1 ||A^{-1}||_1; for a
  // well-conditioned dominant system it should land within a small
  // factor of a dense computation. Sanity: it exceeds 1 always.
  auto batch = make_diag_dominant<double>(1, 32, 10);
  auto sys = batch.system(0);
  const double c = estimate_condition(SystemView<const double>{
      sys.a.as_const(), sys.b.as_const(), sys.c.as_const(),
      sys.d.as_const()});
  EXPECT_GE(c, 1.0);
  EXPECT_LT(c, 1e4);  // dominant systems are well conditioned
}

TEST(Condition, SingularReportsInfinity) {
  TridiagBatch<double> batch(1, 4);  // all-zero matrix
  auto sys = batch.system(0);
  const double c = estimate_condition(SystemView<const double>{
      sys.a.as_const(), sys.b.as_const(), sys.c.as_const(),
      sys.d.as_const()});
  EXPECT_TRUE(std::isinf(c));
}

}  // namespace
