// Coverage for the remaining small utilities: the leveled logger, the
// wall timer, and assorted API edges not covered elsewhere.

#include <gtest/gtest.h>

#include <thread>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "gpusim/occupancy.hpp"
#include "solver/plan.hpp"
#include "tridiag/batch.hpp"

namespace {

using namespace tda;

// ---------- logger ----------

TEST(Log, LevelOverrideRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(before);
}

TEST(Log, MacrosRespectLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  // Must not evaluate the stream expression when filtered out.
  bool evaluated = false;
  auto touch = [&] {
    evaluated = true;
    return "x";
  };
  TDA_DEBUG(touch());
  EXPECT_FALSE(evaluated);
  set_log_level(LogLevel::Debug);
  TDA_DEBUG(touch());
  EXPECT_TRUE(evaluated);
  set_log_level(before);
}

// ---------- timer ----------

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = t.millis();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 2000.0);
  EXPECT_NEAR(t.seconds() * 1e3, t.millis(), 5.0);
}

TEST(Timer, ResetRestarts) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  t.reset();
  EXPECT_LT(t.millis(), 10.0);
}

// ---------- misc API edges ----------

TEST(Occupancy, QueryAndSpecOverloadsAgree) {
  const auto spec = gpusim::geforce_gtx_280();
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 128;
  cfg.shared_bytes = 4096;
  cfg.regs_per_thread = 20;
  const auto a = gpusim::compute_occupancy(spec, cfg);
  const auto b = gpusim::compute_occupancy(spec.query(), cfg);
  EXPECT_EQ(a.blocks_per_sm, b.blocks_per_sm);
  EXPECT_EQ(a.warps_per_sm, b.warps_per_sm);
  EXPECT_DOUBLE_EQ(a.fraction, b.fraction);
}

TEST(Plan, SplitsNeededRejectsZeroLimit) {
  EXPECT_THROW((void)solver::splits_needed(100, 0), ContractError);
}

TEST(Plan, DescribeIsStableAndReadable) {
  solver::SwitchPoints sp;
  sp.stage1_target_systems = 7;
  sp.stage3_system_size = 512;
  sp.thomas_switch = 64;
  sp.variant = kernels::LoadVariant::Coalesced;
  const auto s = solver::describe(sp);
  EXPECT_NE(s.find("stage1_target=7"), std::string::npos);
  EXPECT_NE(s.find("stage3_size=512"), std::string::npos);
  EXPECT_NE(s.find("thomas_switch=64"), std::string::npos);
  EXPECT_NE(s.find("coalesced"), std::string::npos);
}

TEST(SystemView, SplitAndSubsystemConsistent) {
  tridiag::TridiagBatch<double> batch(1, 12);
  for (std::size_t i = 0; i < 12; ++i) batch.b()[i] = double(i);
  auto sys = batch.system(0);
  auto [even, odd] = sys.split();
  auto sub0 = sys.subsystem(1, 0);
  auto sub1 = sys.subsystem(1, 1);
  ASSERT_EQ(even.size(), sub0.size());
  ASSERT_EQ(odd.size(), sub1.size());
  for (std::size_t i = 0; i < even.size(); ++i) {
    EXPECT_EQ(even.b[i], sub0.b[i]);
  }
  for (std::size_t i = 0; i < odd.size(); ++i) {
    EXPECT_EQ(odd.b[i], sub1.b[i]);
  }
}

TEST(StridedViewConst, AsConstSharesStorage) {
  std::vector<int> data{1, 2, 3, 4};
  StridedView<int> v(data.data(), 2, 2);
  auto cv = v.as_const();
  EXPECT_EQ(cv[0], 1);
  EXPECT_EQ(cv[1], 3);
  v[1] = 42;
  EXPECT_EQ(cv[1], 42);
}

}  // namespace
