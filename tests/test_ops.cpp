// Zero-downtime operations tests (docs/OPERATIONS.md): snapshot
// round-trip + whole-file rejection of damage, admin protocol framing
// and server, SCM_RIGHTS fd passing, dedup seeding, and the front-door
// export/import + ops::Server end-to-end paths (live reload, snapshot,
// exactly-once replay across a simulated generation boundary).

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "faults/faults.hpp"
#include "gpusim/device.hpp"
#include "net/client.hpp"
#include "net/dedup.hpp"
#include "net/front_door.hpp"
#include "net/protocol.hpp"
#include "ops/admin.hpp"
#include "ops/fdpass.hpp"
#include "ops/server.hpp"
#include "ops/snapshot.hpp"
#include "ops/state.hpp"
#include "service/solve_service.hpp"

using namespace tda;
using namespace tda::ops;

namespace {

std::string unique_path(const char* tag, const char* ext) {
  static std::atomic<int> counter{0};
  return "/tmp/tda_ops_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ext;
}

/// A small but fully-populated state: two tenants (one disabled, one
/// with awkward characters in the token), two dedup entries spanning
/// both status kinds, nonzero counters everywhere.
ServerState sample_state() {
  ServerState st;
  st.generation = 3;
  st.saved_unix_ms = 1754650000123.25;
  st.dedup_stats = {101, 42, 7, 3, 0};

  TenantState a;
  a.name = "alpha";
  a.token = "se cret%with\tweird\nbytes";
  a.weight = 2.5;
  a.max_inflight = 64;
  a.max_inflight_bytes = 1 << 20;
  a.requests_per_sec = 12.5;
  a.burst = 25.0;
  a.default_deadline_ms = 150.0;
  a.aimd_limit = 17.5;
  a.admitted = 9001;
  a.rejected = 17;
  st.tenants.push_back(a);

  TenantState b;
  b.name = "beta";
  b.token = "tb";
  b.disabled = true;
  st.tenants.push_back(b);

  DedupEntryState e1;
  e1.tenant = "alpha";
  e1.key = 0xDEADBEEFCAFE1234ULL;
  e1.payload_hash = 0x0123456789ABCDEFULL;
  e1.status = 0;
  e1.device = "GTX 280";
  e1.x = {1.0, -2.5, 3.141592653589793, 1e-300, -0.0};
  e1.solve_ms = 0.125;
  e1.wait_ms = 3.5;
  e1.batch_systems = 8;
  e1.retries = 1;
  e1.chunks = 2;
  e1.fallback_used = true;
  st.entries.push_back(e1);

  DedupEntryState e2;
  e2.tenant = "beta";
  e2.key = 1;
  e2.payload_hash = 2;
  e2.status = 5;  // some error status
  e2.error = "singular %pivot\nat row 3";
  st.entries.push_back(e2);
  return st;
}

void expect_states_equal(const ServerState& a, const ServerState& b) {
  EXPECT_EQ(a.generation, b.generation);
  EXPECT_EQ(a.saved_unix_ms, b.saved_unix_ms);
  EXPECT_EQ(a.dedup_stats.inserts, b.dedup_stats.inserts);
  EXPECT_EQ(a.dedup_stats.hits, b.dedup_stats.hits);
  EXPECT_EQ(a.dedup_stats.joins, b.dedup_stats.joins);
  EXPECT_EQ(a.dedup_stats.evictions, b.dedup_stats.evictions);
  EXPECT_EQ(a.dedup_stats.duplicate_executions,
            b.dedup_stats.duplicate_executions);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    const TenantState& x = a.tenants[i];
    const TenantState& y = b.tenants[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.token, y.token);
    EXPECT_EQ(x.weight, y.weight);
    EXPECT_EQ(x.max_inflight, y.max_inflight);
    EXPECT_EQ(x.max_inflight_bytes, y.max_inflight_bytes);
    EXPECT_EQ(x.requests_per_sec, y.requests_per_sec);
    EXPECT_EQ(x.burst, y.burst);
    EXPECT_EQ(x.default_deadline_ms, y.default_deadline_ms);
    EXPECT_EQ(x.disabled, y.disabled);
    EXPECT_EQ(x.aimd_limit, y.aimd_limit);
    EXPECT_EQ(x.admitted, y.admitted);
    EXPECT_EQ(x.rejected, y.rejected);
  }
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const DedupEntryState& x = a.entries[i];
    const DedupEntryState& y = b.entries[i];
    EXPECT_EQ(x.tenant, y.tenant);
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(x.payload_hash, y.payload_hash);
    EXPECT_EQ(x.status, y.status);
    EXPECT_EQ(x.error, y.error);
    EXPECT_EQ(x.device, y.device);
    EXPECT_EQ(x.x, y.x);
    EXPECT_EQ(x.solve_ms, y.solve_ms);
    EXPECT_EQ(x.wait_ms, y.wait_ms);
    EXPECT_EQ(x.batch_systems, y.batch_systems);
    EXPECT_EQ(x.retries, y.retries);
    EXPECT_EQ(x.chunks, y.chunks);
    EXPECT_EQ(x.fallback_used, y.fallback_used);
  }
}

struct System {
  std::vector<double> a, b, c, d;
};

System diag_dominant(std::size_t n, unsigned seed) {
  System s;
  s.a.resize(n);
  s.b.resize(n);
  s.c.resize(n);
  s.d.resize(n);
  std::uint64_t state = seed * 2654435761u + 1;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 33) & 0xFFFF) / 65535.0 - 0.5;
  };
  for (std::size_t i = 0; i < n; ++i) {
    s.a[i] = (i == 0) ? 0.0 : next();
    s.c[i] = (i == n - 1) ? 0.0 : next();
    s.b[i] = (std::abs(s.a[i]) + std::abs(s.c[i])) * 2.0 + 0.5;
    s.d[i] = next();
  }
  return s;
}

/// Service + front door + two tenants, same shape as test_net's
/// fixture, with configurable socket and front-door config.
struct OpsFixture {
  explicit OpsFixture(net::FrontDoorConfig fcfg = {}) {
    service::ServiceConfig scfg;
    scfg.flush_systems = 8;
    scfg.flush_interval_ms = 0.5;
    svc = std::make_unique<service::SolveService<double>>(
        std::vector<gpusim::DeviceSpec>{gpusim::device_registry().back()},
        scfg);
    svc->telemetry().metrics.enable();
    sock = unique_path("door", ".sock");
    fcfg.unix_path = sock;
    fcfg.poll_interval_ms = 2.0;
    door = std::make_unique<net::FrontDoor<double>>(*svc, fcfg);
    net::TenantConfig a;
    a.name = "alpha";
    a.token = "ta";
    a.weight = 2.0;
    door->add_tenant(a);
    net::TenantConfig b;
    b.name = "beta";
    b.token = "tb";
    door->add_tenant(b);
  }

  ~OpsFixture() {
    door->shutdown();
    svc->shutdown();
  }

  bool start() {
    std::string err;
    const bool ok = door->start(&err);
    EXPECT_TRUE(ok) << err;
    return ok;
  }

  std::string sock;
  std::unique_ptr<service::SolveService<double>> svc;
  std::unique_ptr<net::FrontDoor<double>> door;
};

}  // namespace

// ---------------------------------------------------------------- snapshot

TEST(OpsSnapshot, SerializeParseRoundTrip) {
  const ServerState st = sample_state();
  const std::string bytes = serialize_snapshot(st);
  EXPECT_EQ(bytes.rfind(kSnapshotHeader, 0), 0u);
  ServerState back;
  std::string why;
  ASSERT_TRUE(parse_snapshot(bytes, &back, &why)) << why;
  expect_states_equal(st, back);
}

TEST(OpsSnapshot, SaveLoadSaveIsByteStable) {
  const std::string path = unique_path("stable", ".snap");
  const ServerState st = sample_state();
  std::string why;
  ASSERT_TRUE(save_snapshot(path, st, &why)) << why;
  ServerState loaded;
  ASSERT_TRUE(load_snapshot(path, &loaded, &why)) << why;
  // The property the format was designed for: serialization is a pure
  // function of the state, and every field (hex-float doubles included)
  // round-trips exactly.
  EXPECT_EQ(serialize_snapshot(st), serialize_snapshot(loaded));
  ::unlink(path.c_str());
}

TEST(OpsSnapshot, TruncationRejectsWholeFile) {
  const std::string bytes = serialize_snapshot(sample_state());
  // Cut at every interesting boundary: inside the header, at record
  // edges, one byte short of complete.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{10}, bytes.size() / 4,
        bytes.size() / 2, bytes.size() - 1}) {
    ServerState out;
    out.generation = 99;  // canary: a failed parse must not touch out
    std::string why;
    EXPECT_FALSE(parse_snapshot(bytes.substr(0, cut), &out, &why))
        << "cut at " << cut;
    EXPECT_EQ(out.generation, 99u) << "out mutated on cut at " << cut;
  }
}

TEST(OpsSnapshot, BitFlipAnywhereRejectsWholeFile) {
  const std::string bytes = serialize_snapshot(sample_state());
  // Flip a bit in every 7th byte (covering header, checksum digits,
  // tenant records, entry records) — the checksum must catch each one.
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x10);
    if (mutated == bytes) continue;
    ServerState out;
    EXPECT_FALSE(parse_snapshot(mutated, &out, nullptr))
        << "flip at byte " << i;
  }
}

TEST(OpsSnapshot, WrongVersionRejected) {
  std::string bytes = serialize_snapshot(sample_state());
  const std::size_t v = bytes.find("v1");
  ASSERT_NE(v, std::string::npos);
  bytes[v + 1] = '2';
  ServerState out;
  std::string why;
  EXPECT_FALSE(parse_snapshot(bytes, &out, &why));
  EXPECT_FALSE(why.empty());
}

TEST(OpsSnapshot, MissingFileIsCleanColdStart) {
  ServerState out;
  std::string why;
  EXPECT_FALSE(load_snapshot(unique_path("missing", ".snap"), &out, &why));
  EXPECT_FALSE(why.empty());
}

TEST(OpsSnapshot, TruncatedFileOnDiskRejected) {
  const std::string path = unique_path("trunc", ".snap");
  std::string why;
  ASSERT_TRUE(save_snapshot(path, sample_state(), &why)) << why;
  const std::string bytes = serialize_snapshot(sample_state());
  FILE* f = ::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ::fwrite(bytes.data(), 1, bytes.size() / 2, f);
  ::fclose(f);
  ServerState out;
  EXPECT_FALSE(load_snapshot(path, &out, &why));
  ::unlink(path.c_str());
}

TEST(OpsSnapshot, CacheCorruptFaultSiteCoversLoad) {
  const std::string path = unique_path("faulted", ".snap");
  std::string why;
  ASSERT_TRUE(save_snapshot(path, sample_state(), &why)) << why;
  faults::FaultConfig cfg;
  cfg.rate_of(faults::Site::CacheCorrupt) = 1.0;
  faults::ScopedFaultConfig scoped(cfg);
  // Bytes are flipped between disk and the parser; the checksum must
  // reject the whole file, i.e. a corrupt snapshot is a cold start,
  // never a half-restored registry.
  ServerState out;
  EXPECT_FALSE(load_snapshot(path, &out, &why));
  ::unlink(path.c_str());
}

TEST(OpsSnapshot, SaveIsAtomicReplacement) {
  const std::string path = unique_path("atomic", ".snap");
  ServerState st = sample_state();
  std::string why;
  ASSERT_TRUE(save_snapshot(path, st, &why)) << why;
  st.generation = 4;
  ASSERT_TRUE(save_snapshot(path, st, &why)) << why;
  ServerState out;
  ASSERT_TRUE(load_snapshot(path, &out, &why)) << why;
  EXPECT_EQ(out.generation, 4u);
  ::unlink(path.c_str());
}

// ------------------------------------------------------------------- admin

TEST(OpsAdmin, FrameCodecRoundTripAndChecksumRejection) {
  std::string buf;
  encode_admin(buf, AdminCmd::Reload, "tenant=alpha\nweight=3\n");
  ASSERT_GE(buf.size(), kAdminHeaderSize);

  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  ASSERT_EQ(::write(sp[0], buf.data(), buf.size()),
            static_cast<long>(buf.size()));
  AdminFrame frame;
  std::string err;
  ASSERT_TRUE(read_admin_frame(sp[1], &frame, &err)) << err;
  EXPECT_EQ(frame.cmd, AdminCmd::Reload);
  EXPECT_EQ(frame.payload, "tenant=alpha\nweight=3\n");

  // Flip one payload byte: the checksum must reject the frame.
  std::string bad = buf;
  bad.back() = static_cast<char>(bad.back() ^ 0x01);
  ASSERT_EQ(::write(sp[0], bad.data(), bad.size()),
            static_cast<long>(bad.size()));
  EXPECT_FALSE(read_admin_frame(sp[1], &frame, &err));
  ::close(sp[0]);
  ::close(sp[1]);
}

TEST(OpsAdmin, DataPlaneMagicRejectedAtHeader) {
  // A data-plane client that dials the admin socket by mistake: the
  // TDAP magic differs from TDAO, so the very first header is refused.
  std::string buf;
  net::encode_hello(buf, "tok");
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  ASSERT_EQ(::write(sp[0], buf.data(), buf.size()),
            static_cast<long>(buf.size()));
  AdminFrame frame;
  std::string err;
  EXPECT_FALSE(read_admin_frame(sp[1], &frame, &err));
  ::close(sp[0]);
  ::close(sp[1]);
}

TEST(OpsAdmin, ServerRoundTripOkAndErr) {
  const std::string path = unique_path("admin", ".sock");
  AdminServer server;
  std::string err;
  ASSERT_TRUE(server.start(
      path,
      [](AdminCmd cmd, const std::string& payload)
          -> std::pair<bool, std::string> {
        if (cmd == AdminCmd::Health) return {true, "ok\n"};
        if (cmd == AdminCmd::Reload) return {true, "echo:" + payload};
        return {false, "nope"};
      },
      &err))
      << err;

  std::string reply;
  EXPECT_TRUE(
      admin_request(path, AdminCmd::Health, "", &reply, &err))
      << err;
  EXPECT_EQ(reply, "ok\n");
  EXPECT_TRUE(
      admin_request(path, AdminCmd::Reload, "k=v\n", &reply, &err));
  EXPECT_EQ(reply, "echo:k=v\n");
  EXPECT_FALSE(
      admin_request(path, AdminCmd::Drain, "", &reply, &err));
  EXPECT_EQ(reply, "nope");
  server.stop();
  EXPECT_FALSE(
      admin_request(path, AdminCmd::Health, "", &reply, &err));
}

// ------------------------------------------------------------------ fdpass

TEST(OpsFdPass, DescriptorSurvivesTransfer) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);

  ASSERT_TRUE(send_fds(sp[0], {pipe_fds[0]}, 'u'));
  std::vector<int> got;
  char tag = 0;
  ASSERT_TRUE(recv_fds(sp[1], 2, &got, &tag));
  EXPECT_EQ(tag, 'u');
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NE(got[0], pipe_fds[0]);  // dup'd by the kernel, not aliased

  // The received descriptor reads what the original write end wrote.
  ASSERT_EQ(::write(pipe_fds[1], "hi", 2), 2);
  char buf[4] = {};
  EXPECT_EQ(::read(got[0], buf, sizeof(buf)), 2);
  EXPECT_EQ(std::string(buf, 2), "hi");

  ::close(got[0]);
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
  ::close(sp[0]);
  ::close(sp[1]);
}

TEST(OpsFdPass, HandoffTagsRoundTrip) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  int p1[2], p2[2];
  ASSERT_EQ(::pipe(p1), 0);
  ASSERT_EQ(::pipe(p2), 0);
  ASSERT_TRUE(send_fds(sp[0], {p1[0], p2[0]}, 'b'));
  int tcp_fd = -1, unix_fd = -1;
  ASSERT_TRUE(receive_handoff(sp[1], &tcp_fd, &unix_fd));
  EXPECT_GE(tcp_fd, 0);
  EXPECT_GE(unix_fd, 0);
  EXPECT_TRUE(ack_handoff(sp[1]));
  char b = 0;
  EXPECT_EQ(::read(sp[0], &b, 1), 1);
  EXPECT_EQ(b, 'R');
  for (const int fd : {tcp_fd, unix_fd, p1[0], p1[1], p2[0], p2[1],
                       sp[0], sp[1]}) {
    ::close(fd);
  }
}

// ------------------------------------------------------------------- dedup

TEST(OpsDedup, SeededEntryReplaysAndDetectsReuse) {
  net::DedupCache<int> cache;
  cache.seed_completed(1, 42, 0xAB, 777, 16, 0.0);

  // Byte-identical resend: replay.
  EXPECT_EQ(cache.begin(1, 42, 0xAB, 1.0),
            net::DedupCache<int>::State::Completed);
  ASSERT_NE(cache.lookup(1, 42), nullptr);
  EXPECT_EQ(*cache.lookup(1, 42), 777);

  // Same key, different payload: a client bug, not a replay.
  EXPECT_EQ(cache.begin(1, 42, 0xCD, 1.0),
            net::DedupCache<int>::State::Mismatch);
  EXPECT_EQ(cache.stats().mismatches, 1u);

  // The seed counts as the one allowed execution: re-executing the key
  // after restart would be the exactly-once violation the gate hunts.
  EXPECT_EQ(cache.mark_executed(1, 42), 1u);
  EXPECT_EQ(cache.stats().duplicate_executions, 1u);

  // Seeding an existing key is a no-op (live state wins).
  cache.seed_completed(1, 42, 0xEE, 888, 16, 0.0);
  EXPECT_EQ(*cache.lookup(1, 42), 777);
}

TEST(OpsDedup, ExportVisitsOnlyCompleted) {
  net::DedupCache<int> cache;
  cache.seed_completed(1, 10, 0xA, 100, 8, 0.0);
  EXPECT_EQ(cache.begin(1, 11, 0xB, 0.0),
            net::DedupCache<int>::State::Fresh);  // in-flight, no resp
  std::size_t seen = 0;
  cache.for_each_completed(
      [&](std::uint64_t tenant, std::uint64_t key, std::uint64_t hash,
          const int& resp, std::size_t bytes) {
        ++seen;
        EXPECT_EQ(tenant, 1u);
        EXPECT_EQ(key, 10u);
        EXPECT_EQ(hash, 0xAu);
        EXPECT_EQ(resp, 100);
        EXPECT_EQ(bytes, 8u);
      });
  EXPECT_EQ(seen, 1u);
}

// -------------------------------------------------------- door export/import

TEST(OpsDoor, ExportImportRoundTripPreservesTenantsAndWindows) {
  ServerState st = sample_state();
  st.entries.clear();  // entry replay is covered end-to-end below

  OpsFixture f2;
  f2.door->import_state(st);

  ServerState out;
  f2.door->export_state(out);  // door not started: runs inline

  // import adds/updates rather than replaces: the fixture's own
  // "alpha"/"beta" rows were overwritten by the snapshot's.
  ASSERT_EQ(out.tenants.size(), 2u);
  const auto find = [&](const std::string& name) -> const TenantState* {
    for (const auto& t : out.tenants) {
      if (t.name == name) return &t;
    }
    return nullptr;
  };
  const TenantState* a = find("alpha");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->token, st.tenants[0].token);
  EXPECT_EQ(a->weight, 2.5);
  EXPECT_EQ(a->requests_per_sec, 12.5);
  EXPECT_EQ(a->default_deadline_ms, 150.0);
  EXPECT_EQ(a->aimd_limit, 17.5);
  EXPECT_EQ(a->admitted, 9001u);
  EXPECT_EQ(a->rejected, 17u);
  const TenantState* b = find("beta");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->disabled);
}

// -------------------------------------------------------------- ops::Server

TEST(OpsServer, AdminHealthReadyReloadSnapshot) {
  OpsFixture f;
  ASSERT_TRUE(f.start());
  OpsConfig ocfg;
  ocfg.admin_path = unique_path("adm", ".sock");
  ocfg.snapshot_path = unique_path("srv", ".snap");
  ocfg.generation = 1;
  Server<double> srv(*f.svc, *f.door, ocfg);
  std::string err;
  ASSERT_TRUE(srv.start(&err)) << err;

  std::string reply;
  EXPECT_TRUE(
      admin_request(ocfg.admin_path, AdminCmd::Health, "", &reply, &err))
      << err;
  EXPECT_EQ(reply, "ok\n");
  EXPECT_TRUE(
      admin_request(ocfg.admin_path, AdminCmd::Ready, "", &reply, &err));
  EXPECT_EQ(reply, "ready=1\n");

  // Live reload: change alpha's quota and deadline, register a brand
  // new tenant — all applied on the poll thread, no restart.
  EXPECT_TRUE(admin_request(ocfg.admin_path, AdminCmd::Reload,
                            "tenant=alpha\nrequests_per_sec=7\n"
                            "default_deadline_ms=250\n"
                            "tenant=gamma\ntoken=tg\nweight=4\n",
                            &reply, &err))
      << reply;
  EXPECT_EQ(reply, "applied=4\n");  // tenant= scope lines don't count

  EXPECT_TRUE(
      admin_request(ocfg.admin_path, AdminCmd::Stats, "", &reply, &err));
  EXPECT_NE(reply.find("generation=1\n"), std::string::npos);
  EXPECT_NE(reply.find("tenant.alpha.requests_per_sec=7\n"),
            std::string::npos);
  EXPECT_NE(reply.find("tenant.alpha.default_deadline_ms=250\n"),
            std::string::npos);
  EXPECT_NE(reply.find("tenant.gamma.weight=4\n"), std::string::npos);
  EXPECT_NE(reply.find("net.duplicate_executions=0\n"),
            std::string::npos);

  // Bad reloads are rejected whole, with a diagnostic.
  EXPECT_FALSE(admin_request(ocfg.admin_path, AdminCmd::Reload,
                             "tenant=alpha\nbogus_key=1\n", &reply,
                             &err));
  EXPECT_NE(reply.find("unknown tenant key"), std::string::npos);

  // Snapshot-on-demand writes the file; ready flips after drain.
  EXPECT_TRUE(admin_request(ocfg.admin_path, AdminCmd::Snapshot, "",
                            &reply, &err))
      << reply;
  EXPECT_GE(srv.snapshot_age_ms(), 0.0);
  ServerState snap;
  std::string why;
  ASSERT_TRUE(load_snapshot(ocfg.snapshot_path, &snap, &why)) << why;
  EXPECT_EQ(snap.generation, 1u);

  EXPECT_FALSE(srv.should_exit());
  EXPECT_TRUE(
      admin_request(ocfg.admin_path, AdminCmd::Drain, "", &reply, &err));
  EXPECT_TRUE(srv.should_exit());
  EXPECT_TRUE(
      admin_request(ocfg.admin_path, AdminCmd::Ready, "", &reply, &err));
  EXPECT_EQ(reply, "ready=0\n");

  srv.shutdown();
  ::unlink(ocfg.snapshot_path.c_str());
}

TEST(OpsServer, ExactlyOnceReplayAcrossGenerations) {
  const std::string snap_path = unique_path("gen", ".snap");
  const System sys = diag_dominant(64, 5);
  const std::uint64_t key = 0x5EED5EED5EEDULL;
  std::vector<double> gen1_x;

  {  // Generation 1: solve one keyed request, snapshot, "crash".
    OpsFixture f;
    ASSERT_TRUE(f.start());
    OpsConfig ocfg;
    ocfg.snapshot_path = snap_path;
    ocfg.generation = 1;
    Server<double> srv(*f.svc, *f.door, ocfg);

    net::Client client;
    std::string err;
    ASSERT_TRUE(client.connect("unix:" + f.sock, "ta", &err)) << err;
    ASSERT_TRUE(
        client.send_solve2(1, sys.a, sys.b, sys.c, sys.d, 0.0, key, &err))
        << err;
    net::WireResult<double> res;
    ASSERT_TRUE(client.recv_result(res, &err)) << err;
    ASSERT_TRUE(res.ok()) << res.error;
    gen1_x = res.x;

    std::string why;
    ASSERT_TRUE(srv.save_now(&why)) << why;
    srv.shutdown();
  }

  {  // Generation 2: load the snapshot; a byte-identical resend of the
     // same key must replay the cached result, not re-execute.
    OpsFixture f;
    OpsConfig ocfg;
    ocfg.snapshot_path = snap_path;
    ocfg.admin_path = unique_path("adm2", ".sock");
    ocfg.generation = 2;
    Server<double> srv(*f.svc, *f.door, ocfg);
    std::string why;
    ASSERT_TRUE(srv.load(&why)) << why;
    EXPECT_TRUE(srv.loaded_from_snapshot());
    ASSERT_TRUE(f.start());
    std::string err;
    ASSERT_TRUE(srv.start(&err)) << err;

    net::Client client;
    ASSERT_TRUE(client.connect("unix:" + f.sock, "ta", &err)) << err;
    ASSERT_TRUE(
        client.send_solve2(2, sys.a, sys.b, sys.c, sys.d, 0.0, key, &err))
        << err;
    net::WireResult<double> res;
    ASSERT_TRUE(client.recv_result(res, &err)) << err;
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.x, gen1_x);  // the exact gen-1 solution, bit for bit

    // Same key with a different right-hand side: reuse, not replay.
    System other = sys;
    other.d[0] += 1.0;
    ASSERT_TRUE(client.send_solve2(3, other.a, other.b, other.c, other.d,
                                   0.0, key, &err))
        << err;
    ASSERT_TRUE(client.recv_result(res, &err)) << err;
    EXPECT_EQ(res.code, net::ErrorCode::KeyReuse) << res.error;

    std::string reply;
    ASSERT_TRUE(admin_request(ocfg.admin_path, AdminCmd::Stats, "",
                              &reply, &err))
        << err;
    EXPECT_NE(reply.find("generation=2\n"), std::string::npos);
    EXPECT_NE(reply.find("loaded_from_snapshot=1\n"), std::string::npos);
    EXPECT_NE(reply.find("net.dedup_hits=1\n"), std::string::npos);
    EXPECT_NE(reply.find("net.duplicate_executions=0\n"),
              std::string::npos);
    EXPECT_NE(reply.find("net.key_reuse=1\n"), std::string::npos);
    srv.shutdown();
  }
  ::unlink(snap_path.c_str());
}
