// Tests for graceful degradation under resource exhaustion: device
// memory accounting (gpusim/memory.hpp), the `oom` fault site, adaptive
// batch splitting (solver/chunked.hpp), memory-aware admission and the
// in-flight watchdog of the solve service. Every test pins its own
// budgets and fault config so an ambient TDA_MEM_BUDGET / TDA_FAULTS
// (the CI memory-pressure job sets both) cannot change the outcome.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <vector>

#include "common/rng.hpp"
#include "faults/faults.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/memory.hpp"
#include "kernels/device_batch.hpp"
#include "service/solve_service.hpp"
#include "solver/chunked.hpp"
#include "solver/guards.hpp"
#include "solver/ragged.hpp"
#include "tuning/tuners.hpp"

namespace {

using namespace tda;
using namespace tda::service;

// ---------- memory accounting ----------

TEST(MemParse, SuffixesAndMalformed) {
  EXPECT_EQ(gpusim::parse_mem_bytes("4096"), 4096u);
  EXPECT_EQ(gpusim::parse_mem_bytes("256k"), 256u * 1024);
  EXPECT_EQ(gpusim::parse_mem_bytes("2M"), 2u * 1024 * 1024);
  EXPECT_EQ(gpusim::parse_mem_bytes("1g"), 1024u * 1024 * 1024);
  EXPECT_EQ(gpusim::parse_mem_bytes("1.5k"), 1536u);
  EXPECT_EQ(gpusim::parse_mem_bytes(""), 0u);
  EXPECT_EQ(gpusim::parse_mem_bytes("nope"), 0u);
  EXPECT_EQ(gpusim::parse_mem_bytes("12q"), 0u);
  EXPECT_EQ(gpusim::parse_mem_bytes("-5"), 0u);
}

TEST(MemoryTracker, AllocateReleaseHighWater) {
  gpusim::MemoryTracker mt(1000);
  mt.allocate(600, "a");
  EXPECT_EQ(mt.in_use(), 600u);
  EXPECT_EQ(mt.available(), 400u);
  EXPECT_THROW(mt.allocate(500, "b"), gpusim::OutOfMemory);
  EXPECT_EQ(mt.oom_count(), 1u);
  EXPECT_EQ(mt.in_use(), 600u);  // failed claim left no residue
  mt.allocate(400, "c");
  EXPECT_EQ(mt.high_water(), 1000u);
  mt.release(600);
  EXPECT_EQ(mt.in_use(), 400u);
  EXPECT_EQ(mt.high_water(), 1000u);  // high water survives release
  mt.release(10'000);                 // clamped, no underflow
  EXPECT_EQ(mt.in_use(), 0u);
  // Budget 0 = unlimited.
  gpusim::MemoryTracker unlimited(0);
  unlimited.allocate(1u << 30, "huge");
  EXPECT_GT(unlimited.available(), 1u << 30);
}

TEST(MemoryTracker, ReservationRaii) {
  gpusim::MemoryTracker mt(100);
  {
    gpusim::MemoryReservation r(&mt, 60);
    mt.allocate(60, "r");  // the reservation above owns these bytes
    EXPECT_EQ(mt.in_use(), 60u);
    gpusim::MemoryReservation moved(std::move(r));
    EXPECT_FALSE(r.tracked());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(moved.tracked());
  }
  EXPECT_EQ(mt.in_use(), 0u);  // released exactly once, on destruction
}

TEST(MemoryTracker, EnvOverride) {
  ::setenv("TDA_MEM_BUDGET", "128k", 1);
  EXPECT_EQ(gpusim::mem_budget_from_env(1u << 30), 128u * 1024);
  ::setenv("TDA_MEM_BUDGET", "garbage", 1);
  EXPECT_EQ(gpusim::mem_budget_from_env(555), 555u);  // warn + default
  ::unsetenv("TDA_MEM_BUDGET");
  EXPECT_EQ(gpusim::mem_budget_from_env(777), 777u);
}

TEST(DeviceMemory, TrackedBatchCountsAgainstBudget) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  const std::size_t fp = kernels::DeviceBatch<double>::footprint_bytes(4, 64);
  EXPECT_EQ(fp, 9u * 4 * 64 * sizeof(double));
  dev.set_mem_budget(fp);
  {
    kernels::DeviceBatch<double> b(dev, 4, 64);
    EXPECT_EQ(dev.memory().in_use(), fp);
    EXPECT_THROW((kernels::DeviceBatch<double>(dev, 1, 64)),
                 gpusim::OutOfMemory);
  }
  EXPECT_EQ(dev.memory().in_use(), 0u);
  EXPECT_EQ(dev.memory().high_water(), fp);
  // Untracked (tuning) batches stay exempt from the budget.
  kernels::DeviceBatch<double> cost_only(4, 64);
  EXPECT_EQ(dev.memory().in_use(), 0u);
}

// ---------- the `oom` fault site ----------

TEST(OomInjection, ArmedDeviceThrowsTypedOom) {
  faults::FaultConfig cfg;
  cfg.rate_of(faults::Site::DeviceOOM) = 1.0;
  faults::ScopedFaultConfig scoped(cfg);
  auto& inj = faults::FaultInjector::global();

  gpusim::Device dev(gpusim::geforce_gtx_470());
  dev.set_mem_budget(1u << 30);

  // Unarmed: the site never draws a decision.
  auto r = dev.mem_reserve(1024, "unarmed");
  EXPECT_EQ(inj.decisions(faults::Site::DeviceOOM), 0u);
  r.reset();

  dev.arm_faults();
  try {
    auto r2 = dev.mem_reserve(1024, "armed");
    FAIL() << "expected injected OutOfMemory";
  } catch (const gpusim::OutOfMemory&) {
    // Injected OOM is NOT the retryable DeviceFault class and leaves
    // the tracker untouched (the budget-exceeded path has its own
    // counter).
  }
  EXPECT_EQ(inj.decisions(faults::Site::DeviceOOM), 1u);
  EXPECT_EQ(inj.injected(faults::Site::DeviceOOM), 1u);
  EXPECT_EQ(dev.memory().in_use(), 0u);
  EXPECT_EQ(dev.memory().oom_count(), 0u);  // injected, not budget
}

TEST(OomInjection, SpecRoundTripsOomKey) {
  const auto cfg = faults::parse_fault_config("seed=9,oom=0.25");
  EXPECT_DOUBLE_EQ(cfg.rate_of(faults::Site::DeviceOOM), 0.25);
  EXPECT_NE(cfg.describe().find("oom=0.25"), std::string::npos);
}

// ---------- adaptive batch splitting ----------

tridiag::TridiagBatch<double> random_batch(std::size_t m, std::size_t n,
                                           std::uint64_t seed) {
  tridiag::TridiagBatch<double> b(m, n);
  Rng rng(seed);
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = s * n + i;
      b.a()[k] = (i == 0) ? 0.0 : rng.uniform(-1, 1);
      b.c()[k] = (i == n - 1) ? 0.0 : rng.uniform(-1, 1);
      b.b()[k] = (std::abs(b.a()[k]) + std::abs(b.c()[k])) * 2.0 + 0.5;
      b.d()[k] = rng.uniform(-1, 1);
    }
  }
  return b;
}

double batch_residual(const tridiag::TridiagBatch<double>& b) {
  double worst = 0.0;
  const std::size_t m = b.num_systems(), n = b.system_size();
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = s * n + i;
      double acc = b.b()[k] * b.x()[k] - b.d()[k];
      if (i > 0) acc += b.a()[k] * b.x()[k - 1];
      if (i + 1 < n) acc += b.c()[k] * b.x()[k + 1];
      worst = std::max(worst, std::abs(acc));
    }
  }
  return worst;
}

TEST(ChunkedSolver, MatchesUnchunkedAcrossSwitchPoints) {
  faults::ScopedFaultConfig quiet{faults::FaultConfig{}};
  // Sizes spanning the stage-1/2/3/4 switch points, incl. 1-equation
  // systems.
  const std::size_t sizes[] = {1, 2, 3, 17, 64, 127, 256, 300, 512};
  const std::size_t m = 40;
  for (const std::size_t n : sizes) {
    gpusim::Device dev(gpusim::geforce_gtx_470());
    auto points = tuning::default_switch_points<double>();
    solver::GpuTridiagonalSolver<double> inner(dev, points);

    auto reference = random_batch(m, n, 1000 + n);
    auto chunked_in = reference;  // identical coefficients

    // Unchunked reference under an unlimited budget.
    dev.set_mem_budget(0);
    solver::GuardedSolver<double> guard(inner);
    const auto ref = guard.solve(reference);
    ASSERT_TRUE(ref.all_solved()) << "n=" << n;

    // 10% of the full footprint forces ~10 chunks.
    const std::size_t full =
        kernels::DeviceBatch<double>::footprint_bytes(m, n);
    dev.set_mem_budget(std::max<std::size_t>(full / 10,
        kernels::DeviceBatch<double>::footprint_bytes(1, n)));
    solver::ChunkedSolver<double> chunked(dev, inner);
    const auto got = chunked.solve(chunked_in);
    ASSERT_TRUE(got.guarded.all_solved()) << "n=" << n;
    EXPECT_GT(got.chunking.chunks, 1u) << "n=" << n;
    EXPECT_LE(got.chunking.max_chunk_systems,
              got.chunking.planned_chunk_systems);

    // Chunked sub-batches may execute a different stage plan than the
    // full batch (the plan depends on m), so the contract is residual
    // accuracy, not bit-identity.
    EXPECT_LT(batch_residual(chunked_in), 1e-8) << "n=" << n;
    EXPECT_LT(batch_residual(reference), 1e-8) << "n=" << n;
  }
}

TEST(ChunkedSolver, BisectsToCpuFallbackWhenNothingFits) {
  faults::ScopedFaultConfig quiet{faults::FaultConfig{}};
  gpusim::Device dev(gpusim::geforce_gtx_470());
  auto points = tuning::default_switch_points<double>();
  solver::GpuTridiagonalSolver<double> inner(dev, points);
  // Budget below even one system's footprint: every chunk bisects to
  // the floor and degrades to the pivoting CPU path.
  dev.set_mem_budget(16);
  auto batch = random_batch(6, 32, 77);
  solver::ChunkedSolver<double> chunked(dev, inner);
  const auto res = chunked.solve(batch);
  ASSERT_TRUE(res.guarded.all_solved());
  EXPECT_EQ(res.guarded.fallback_used, 6u);
  EXPECT_EQ(res.chunking.oom_fallback_systems, 6u);
  EXPECT_GT(res.chunking.oom_events, 0u);
  EXPECT_EQ(res.chunking.chunks, 0u);  // nothing ran on the device
  EXPECT_LT(batch_residual(batch), 1e-8);
}

TEST(ChunkedSolver, AbsorbsInjectedOomViaBisect) {
  faults::FaultConfig cfg;
  cfg.seed = 5;
  cfg.rate_of(faults::Site::DeviceOOM) = 0.4;
  faults::ScopedFaultConfig scoped(cfg);

  gpusim::Device dev(gpusim::geforce_gtx_470());
  dev.arm_faults();
  dev.set_mem_budget(0);  // only injected OOM, never genuine
  auto points = tuning::default_switch_points<double>();
  solver::GpuTridiagonalSolver<double> inner(dev, points);
  auto batch = random_batch(24, 64, 42);
  solver::ChunkedSolver<double> chunked(dev, inner);
  const auto res = chunked.solve(batch);
  ASSERT_TRUE(res.guarded.all_solved());
  EXPECT_LT(batch_residual(batch), 1e-8);
}

TEST(ChunkedSolver, EmitsChunkTelemetry) {
  faults::ScopedFaultConfig quiet{faults::FaultConfig{}};
  gpusim::Device dev(gpusim::geforce_gtx_470());
  telemetry::Telemetry tel;
  tel.enable_all();
  dev.set_telemetry(&tel);
  auto points = tuning::default_switch_points<double>();
  solver::GpuTridiagonalSolver<double> inner(dev, points);
  const std::size_t m = 16, n = 64;
  dev.set_mem_budget(kernels::DeviceBatch<double>::footprint_bytes(m, n) / 4);
  auto batch = random_batch(m, n, 3);
  solver::ChunkedSolver<double> chunked(dev, inner);
  const auto res = chunked.solve(batch);
  EXPECT_GT(res.chunking.chunks, 1u);
  EXPECT_DOUBLE_EQ(tel.metrics.counter("solver.chunked_solves"), 1.0);
  EXPECT_DOUBLE_EQ(tel.metrics.counter("solver.chunks"),
                   static_cast<double>(res.chunking.chunks));
  EXPECT_GT(tel.metrics.gauge("device.mem_high_water"), 0.0);
}

// ---------- service: memory admission, watchdog, timeout scopes ----------

SolveRequest<double> make_request(std::size_t n, std::uint64_t seed,
                                  double deadline_ms = 0.0) {
  SolveRequest<double> req;
  req.a.resize(n);
  req.b.resize(n);
  req.c.resize(n);
  req.d.resize(n);
  req.deadline_ms = deadline_ms;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    req.a[i] = (i == 0) ? 0.0 : rng.uniform(-1, 1);
    req.c[i] = (i == n - 1) ? 0.0 : rng.uniform(-1, 1);
    req.b[i] = (std::abs(req.a[i]) + std::abs(req.c[i])) * 2.0 + 0.5;
    req.d[i] = rng.uniform(-1, 1);
  }
  return req;
}

std::vector<gpusim::DeviceSpec> one_device() {
  return {gpusim::geforce_gtx_470()};
}

TEST(ServiceMemory, AdmissionRejectsTyped) {
  faults::ScopedFaultConfig quiet{faults::FaultConfig{}};
  ServiceConfig cfg;
  cfg.backpressure = BackpressurePolicy::Reject;
  cfg.flush_systems = 1000;
  cfg.flush_interval_ms = 10'000.0;  // keep requests resident in queue
  const std::size_t fp =
      kernels::DeviceBatch<double>::footprint_bytes(1, 128);
  cfg.mem_budget_bytes = 4 * fp;
  cfg.mem_admission_fraction = 0.5;  // room for exactly 2 requests
  SolveService<double> svc(one_device(), cfg);
  EXPECT_EQ(svc.total_mem_budget(), 4 * fp);

  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 4; ++i)
    futs.push_back(svc.submit(make_request(128, 10 + i)));
  svc.shutdown();

  std::size_t ok = 0, rejected = 0;
  for (auto& f : futs) {
    const auto resp = f.get();
    if (resp.status == SolveStatus::Ok) ++ok;
    if (resp.status == SolveStatus::Rejected) {
      ++rejected;
      EXPECT_NE(resp.error.find("memory admission"), std::string::npos);
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(rejected, 2u);
  EXPECT_EQ(svc.counters().mem_rejected, 2u);
}

TEST(ServiceMemory, TenPercentBudgetStillSolvesEverythingViaChunking) {
  faults::ScopedFaultConfig quiet{faults::FaultConfig{}};
  ServiceConfig cfg;
  cfg.flush_systems = 32;
  cfg.flush_interval_ms = 10'000.0;
  // 10% of the largest coalesced batch: every flush must chunk.
  cfg.mem_budget_bytes =
      kernels::DeviceBatch<double>::footprint_bytes(32, 128) / 10;
  SolveService<double> svc(one_device(), cfg);

  std::vector<SolveRequest<double>> copies;
  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 64; ++i) {
    copies.push_back(make_request(128, 500 + i));
    futs.push_back(svc.submit(copies.back()));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto resp = futs[i].get();
    ASSERT_EQ(resp.status, SolveStatus::Ok) << to_string(resp.status);
    EXPECT_GT(resp.chunks, 1u);
    double worst = 0.0;
    const auto& req = copies[i];
    for (std::size_t k = 0; k < req.size(); ++k) {
      double acc = req.b[k] * resp.x[k] - req.d[k];
      if (k > 0) acc += req.a[k] * resp.x[k - 1];
      if (k + 1 < req.size()) acc += req.c[k] * resp.x[k + 1];
      worst = std::max(worst, std::abs(acc));
    }
    EXPECT_LT(worst, 1e-8);
  }
  const auto c = svc.counters();
  EXPECT_EQ(c.completed, 64u);
  EXPECT_GT(c.chunked_solves, 0u);
  EXPECT_GT(c.chunks, c.flushes);
}

TEST(ServiceWatchdog, StalledSolveTimesOutInFlight) {
  faults::FaultConfig fc;
  fc.rate_of(faults::Site::WorkerStall) = 1.0;
  fc.stall_ms = 300.0;
  faults::ScopedFaultConfig scoped(fc);

  ServiceConfig cfg;
  cfg.flush_systems = 1;
  cfg.flush_interval_ms = 0.0;  // immediate pickup
  cfg.watchdog.interval_ms = 1.0;
  cfg.watchdog.stall_threshold_ms = 20.0;
  cfg.watchdog.stall_strikes = 3;
  SolveService<double> svc(one_device(), cfg);

  // Deadline (30 ms) lapses inside the 300 ms injected stall: the
  // watchdog cancels mid-flight and the first stage-boundary poll after
  // the stall unwinds the solve.
  auto resp = svc.submit(make_request(64, 1, 30.0)).get();
  EXPECT_EQ(resp.status, SolveStatus::TimedOut) << to_string(resp.status);
  EXPECT_EQ(resp.timeout_scope, TimeoutScope::InFlight);
  svc.shutdown();

  const auto c = svc.counters();
  EXPECT_EQ(c.timed_out_inflight, 1u);
  EXPECT_EQ(c.timed_out_queue, 0u);
  EXPECT_GE(c.watchdog_cancels, 1u);
  // 300 ms of silence at a 20 ms threshold: strikes accrue and the
  // breaker opens, feeding dispatch steering.
  EXPECT_GE(c.watchdog_stalls, 3u);
  EXPECT_GE(c.breaker_opens, 1u);
}

TEST(ServiceWatchdog, UnexpiredBatchmateIsRequeuedAndCompletes) {
  faults::FaultConfig fc;
  fc.rate_of(faults::Site::WorkerStall) = 1.0;
  fc.stall_ms = 150.0;
  faults::ScopedFaultConfig scoped(fc);

  ServiceConfig cfg;
  cfg.flush_systems = 2;  // both requests coalesce into one job
  cfg.flush_interval_ms = 50.0;  // lets the requeued single re-flush
  cfg.watchdog.interval_ms = 1.0;
  SolveService<double> svc(one_device(), cfg);

  auto doomed = svc.submit(make_request(64, 2, 30.0));
  auto patient = svc.submit(make_request(64, 3, 10'000.0));

  const auto r1 = doomed.get();
  EXPECT_EQ(r1.status, SolveStatus::TimedOut);
  EXPECT_EQ(r1.timeout_scope, TimeoutScope::InFlight);
  // The batchmate had deadline to spare: requeued, re-flushed (stalled
  // again, rate 1.0) and finally solved.
  const auto r2 = patient.get();
  EXPECT_EQ(r2.status, SolveStatus::Ok) << r2.error;
  svc.shutdown();

  const auto c = svc.counters();
  EXPECT_GE(c.timeout_requeues, 1u);
  EXPECT_EQ(c.timed_out_inflight, 1u);
  EXPECT_EQ(c.completed, 1u);
}

TEST(ServiceDeadlines, QueueAndInFlightScopesAreDistinct) {
  faults::ScopedFaultConfig quiet{faults::FaultConfig{}};
  ServiceConfig cfg;
  cfg.flush_systems = 1000;
  cfg.flush_interval_ms = 10'000.0;  // nothing flushes before expiry
  SolveService<double> svc(one_device(), cfg);
  auto resp = svc.submit(make_request(64, 4, 5.0)).get();
  EXPECT_EQ(resp.status, SolveStatus::TimedOut);
  EXPECT_EQ(resp.timeout_scope, TimeoutScope::Queue);
  svc.shutdown();
  EXPECT_EQ(svc.counters().timed_out_queue, 1u);
  EXPECT_EQ(svc.counters().timed_out_inflight, 0u);
}

TEST(ServiceMemory, EmptyRaggedBatchIsANoOp) {
  faults::ScopedFaultConfig quiet{faults::FaultConfig{}};
  ServiceConfig cfg;
  cfg.mem_budget_bytes = 1024;  // tiny budget must not matter
  SolveService<double> svc(one_device(), cfg);
  solver::RaggedBatch<double> empty{std::vector<std::size_t>{}};
  auto futs = svc.submit_ragged(empty);
  EXPECT_TRUE(futs.empty());
  svc.shutdown();
  EXPECT_EQ(svc.counters().submitted, 0u);
}

}  // namespace
