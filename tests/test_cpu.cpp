// Tests for the CPU baseline (MKL substitute): pivoting LU solver, the
// threaded batch driver and the Core-i5 cost model.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cpu/batch_solver.hpp"
#include "cpu/cost_model.hpp"
#include "cpu/gtsv.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/thomas.hpp"
#include "tridiag/verify.hpp"

namespace {

using namespace tda;
using namespace tda::cpu;
using namespace tda::tridiag;

template <typename T>
SystemView<const T> const_view_of(const TridiagBatch<T>& batch,
                                  std::size_t s) {
  const std::size_t n = batch.system_size();
  const std::size_t off = s * n;
  return SystemView<const T>{
      StridedView<const T>(batch.a().data() + off, n, 1),
      StridedView<const T>(batch.b().data() + off, n, 1),
      StridedView<const T>(batch.c().data() + off, n, 1),
      StridedView<const T>(batch.d().data() + off, n, 1)};
}

// ---------- gtsv ----------

TEST(Gtsv, MatchesDenseOnDominantSystems) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u, 17u, 64u, 257u}) {
    auto batch = make_diag_dominant<double>(1, n, 900 + n);
    auto ref = dense_solve(const_view_of(batch, 0));
    std::vector<double> a(batch.a().begin(), batch.a().end());
    std::vector<double> b(batch.b().begin(), batch.b().end());
    std::vector<double> c(batch.c().begin(), batch.c().end());
    std::vector<double> d(batch.d().begin(), batch.d().end());
    std::vector<double> x(n);
    ASSERT_TRUE(gtsv_solve<double>(a, b, c, d, x));
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], ref[i], 1e-9);
  }
}

TEST(Gtsv, SolvesWhereThomasFails) {
  // Zero leading diagonal entry: Thomas hits a zero pivot immediately;
  // gtsv pivots around it.
  std::vector<double> a{0, 1, 0.5}, b{0, 1, 2}, c{2, 0.5, 0}, d{2, 2.5, 3};
  {
    std::vector<double> at = a, bt = b, ct = c, dt = d, x(3);
    SystemView<double> sys{StridedView<double>(at.data(), 3, 1),
                           StridedView<double>(bt.data(), 3, 1),
                           StridedView<double>(ct.data(), 3, 1),
                           StridedView<double>(dt.data(), 3, 1)};
    EXPECT_FALSE(
        thomas_solve_inplace(sys, StridedView<double>(x.data(), 3, 1)));
  }
  std::vector<double> x(3);
  ASSERT_TRUE(gtsv_solve<double>(a, b, c, d, x));
  // Verify against dense reference on fresh copies.
  std::vector<double> a2{0, 1, 0.5}, b2{0, 1, 2}, c2{2, 0.5, 0},
      d2{2, 2.5, 3};
  SystemView<const double> sys{StridedView<const double>(a2.data(), 3, 1),
                               StridedView<const double>(b2.data(), 3, 1),
                               StridedView<const double>(c2.data(), 3, 1),
                               StridedView<const double>(d2.data(), 3, 1)};
  auto ref = dense_solve(sys);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], ref[i], 1e-12);
}

TEST(Gtsv, RobustOnRandomGeneralSystems) {
  // Random non-dominant systems: gtsv must either solve accurately or
  // report singularity — never return garbage silently.
  int solved = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const std::size_t n = 24;
    auto batch = make_random_general<double>(1, n, seed);
    auto sys = const_view_of(batch, 0);
    std::vector<double> a(batch.a().begin(), batch.a().end());
    std::vector<double> b(batch.b().begin(), batch.b().end());
    std::vector<double> c(batch.c().begin(), batch.c().end());
    std::vector<double> d(batch.d().begin(), batch.d().end());
    std::vector<double> x(n);
    if (gtsv_solve<double>(a, b, c, d, x)) {
      ++solved;
      const double res = residual_inf(
          sys, StridedView<const double>(x.data(), n, 1));
      EXPECT_LT(res, 1e-6) << "seed=" << seed;
    }
  }
  EXPECT_GT(solved, 30);  // singular draws are rare
}

TEST(Gtsv, SingularMatrixReported) {
  std::vector<double> a{0, 0}, b{0, 0}, c{0, 0}, d{1, 1};
  std::vector<double> x(2);
  EXPECT_FALSE(gtsv_solve<double>(a, b, c, d, x));
}

TEST(Gtsv, SizeOne) {
  std::vector<double> a{0}, b{5}, c{0}, d{10}, x(1);
  ASSERT_TRUE(gtsv_solve<double>(a, b, c, d, x));
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(Gtsv, FloatPath) {
  auto batch = make_diag_dominant<float>(1, 100, 31);
  auto ref = dense_solve(const_view_of(batch, 0));
  std::vector<float> a(batch.a().begin(), batch.a().end());
  std::vector<float> b(batch.b().begin(), batch.b().end());
  std::vector<float> c(batch.c().begin(), batch.c().end());
  std::vector<float> d(batch.d().begin(), batch.d().end());
  std::vector<float> x(100);
  ASSERT_TRUE(gtsv_solve<float>(a, b, c, d, x));
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_NEAR(x[i], static_cast<float>(ref[i]), 1e-3f);
}

// ---------- batch driver ----------

TEST(BatchCpuSolver, SolvesBatchCorrectly) {
  auto batch = make_diag_dominant<double>(32, 65, 44);
  auto pristine = batch;
  BatchCpuSolver solver(2);
  auto st = solver.solve(batch);
  EXPECT_EQ(st.failures, 0u);
  EXPECT_EQ(st.threads_used, 2);
  EXPECT_LT(batch_residual_inf(pristine, batch.x()), 1e-10);
}

TEST(BatchCpuSolver, PreservesCoefficients) {
  auto batch = make_diag_dominant<double>(4, 32, 45);
  const double b0 = batch.b()[10];
  BatchCpuSolver solver(1);
  solver.solve(batch);
  EXPECT_EQ(batch.b()[10], b0);
}

TEST(BatchCpuSolver, AutoThreadsPaperPolicy) {
  // m == 1 -> single thread (MKL solver is sequential).
  auto single = make_diag_dominant<double>(1, 128, 46);
  BatchCpuSolver solver(0);
  EXPECT_EQ(solver.solve(single).threads_used, 1);
  // m > 1 -> two threads.
  auto many = make_diag_dominant<double>(8, 128, 47);
  EXPECT_EQ(solver.solve(many).threads_used, 2);
}

TEST(BatchCpuSolver, SingleVsMultiThreadSameAnswer) {
  auto b1 = make_diag_dominant<double>(16, 77, 48);
  auto b2 = b1;
  BatchCpuSolver s1(1), s4(4);
  s1.solve(b1);
  s4.solve(b2);
  for (std::size_t k = 0; k < b1.total_equations(); ++k)
    EXPECT_DOUBLE_EQ(b1.x()[k], b2.x()[k]);
}

TEST(BatchCpuSolver, CountsSingularSystems) {
  TridiagBatch<double> batch(3, 4);
  // Leave systems all-zero -> singular; fill one good system.
  auto sys = batch.system(1);
  for (std::size_t i = 0; i < 4; ++i) {
    sys.b[i] = 4.0;
    sys.d[i] = 1.0;
  }
  BatchCpuSolver solver(1);
  auto st = solver.solve(batch);
  EXPECT_EQ(st.failures, 2u);
}

// ---------- cost model ----------

TEST(CpuModel, CalibratedToPaperAnchors) {
  auto spec = paper_core_i5();
  // Fig. 8 CPU anchors: 1K×1K ≈ 10.7 ms (2 threads), 1×2M ≈ 34 ms (1
  // thread), fp32.
  EXPECT_NEAR(mkl_model_ms(spec, 1024, 1024, 4), 10.7, 1.5);
  EXPECT_NEAR(mkl_model_ms(spec, 1, 2 * 1024 * 1024, 4), 34.0, 4.0);
}

TEST(CpuModel, ScalesLinearlyInWork) {
  auto spec = paper_core_i5();
  const double t1 = mkl_model_ms(spec, 1024, 1024, 4);
  const double t4 = mkl_model_ms(spec, 2048, 2048, 4);
  EXPECT_NEAR(t4 / t1, 4.0, 1e-9);
}

TEST(CpuModel, SingleSystemUsesSingleThreadBandwidth) {
  auto spec = paper_core_i5();
  const double many = mkl_model_ms(spec, 2, 1 << 20, 4);
  const double one = mkl_model_ms(spec, 1, 1 << 21, 4);
  EXPECT_GT(one, many);  // same work, lower bandwidth
}

}  // namespace
