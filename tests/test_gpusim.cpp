// Tests for the GPU simulator: device registry (paper Table I), query
// subset (Table II), coalescing model, bank conflicts, occupancy
// calculator, cost model and launcher.

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/memory_model.hpp"
#include "gpusim/occupancy.hpp"

namespace {

using namespace tda;
using namespace tda::gpusim;

// ---------- device registry (paper Table I) ----------

TEST(DeviceRegistry, HasThreePaperDevices) {
  auto devs = device_registry();
  ASSERT_EQ(devs.size(), 3u);
  EXPECT_EQ(devs[0].name, "GeForce 8800 GTX");
  EXPECT_EQ(devs[1].name, "GeForce GTX 280");
  EXPECT_EQ(devs[2].name, "GeForce GTX 470");
}

TEST(DeviceRegistry, TableOneBandwidths) {
  EXPECT_DOUBLE_EQ(geforce_8800_gtx().global_bw_gb_s, 57.6);
  EXPECT_DOUBLE_EQ(geforce_gtx_280().global_bw_gb_s, 141.7);
  EXPECT_DOUBLE_EQ(geforce_gtx_470().global_bw_gb_s, 133.9);
}

TEST(DeviceRegistry, TableOneSharedMemory) {
  EXPECT_EQ(geforce_8800_gtx().shared_mem_per_sm, 16u * 1024);
  EXPECT_EQ(geforce_gtx_280().shared_mem_per_sm, 16u * 1024);
  EXPECT_EQ(geforce_gtx_470().shared_mem_per_sm, 48u * 1024);
}

TEST(DeviceRegistry, TableOneProcessorCounts) {
  EXPECT_EQ(geforce_8800_gtx().sm_count, 14);
  EXPECT_EQ(geforce_gtx_280().sm_count, 30);
  EXPECT_EQ(geforce_gtx_470().sm_count, 14);
  EXPECT_EQ(geforce_8800_gtx().thread_procs_per_sm, 8);
  EXPECT_EQ(geforce_gtx_280().thread_procs_per_sm, 8);
  EXPECT_EQ(geforce_gtx_470().thread_procs_per_sm, 32);
}

TEST(DeviceRegistry, LookupByName) {
  auto d = device_by_name("GeForce GTX 280");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->sm_count, 30);
  EXPECT_FALSE(device_by_name("GeForce 9999").has_value());
}

// ---------- DeviceQuery: only Table II properties ----------

TEST(DeviceQuery, ExposesQueryableSubset) {
  auto spec = geforce_gtx_470();
  auto q = spec.query();
  EXPECT_EQ(q.name, spec.name);
  EXPECT_EQ(q.sm_count, spec.sm_count);
  EXPECT_EQ(q.shared_mem_per_sm, spec.shared_mem_per_sm);
  EXPECT_EQ(q.warp_size, 32);
  EXPECT_EQ(q.registers_per_sm, spec.registers_per_sm);
  EXPECT_EQ(q.max_threads_per_block, spec.max_threads_per_block);
  // The hidden performance fields simply do not exist on DeviceQuery —
  // this is a compile-time guarantee; here we just document the intent.
  EXPECT_GT(q.max_grid_blocks, 0);
}

// ---------- coalescing model ----------

TEST(Coalescing, ContiguousIsFree) {
  for (const auto& d : device_registry()) {
    EXPECT_DOUBLE_EQ(strided_inflation(d, 1, 4), 1.0) << d.name;
    EXPECT_DOUBLE_EQ(strided_inflation(d, 1, 8), 1.0) << d.name;
  }
}

TEST(Coalescing, InflationGrowsWithStrideThenSaturates) {
  auto d = geforce_gtx_280();  // 64-byte segments
  double prev = 1.0;
  for (std::size_t s = 2; s <= 64; s *= 2) {
    const double infl = strided_inflation(d, s, 4);
    EXPECT_GE(infl, prev);
    prev = infl;
  }
  // Cap: one 64B segment per 4B element -> 16x.
  EXPECT_DOUBLE_EQ(strided_inflation(d, 64, 4), 16.0);
  EXPECT_DOUBLE_EQ(strided_inflation(d, 4096, 4), 16.0);
}

TEST(Coalescing, CapDependsOnElementSize) {
  auto d = geforce_gtx_280();
  // Doubles: 64B / 8B = 8x worst case.
  EXPECT_DOUBLE_EQ(strided_inflation(d, 1024, 8), 8.0);
}

TEST(Coalescing, DeviceSegmentSizesDiffer) {
  // Worst-case inflation: G80 (128B segments) suffers most, Fermi (32B)
  // least — the architecture story behind the variant crossover.
  const double i8800 = strided_inflation(geforce_8800_gtx(), 4096, 4);
  const double i280 = strided_inflation(geforce_gtx_280(), 4096, 4);
  const double i470 = strided_inflation(geforce_gtx_470(), 4096, 4);
  EXPECT_GT(i8800, i280);
  EXPECT_GT(i280, i470);
  EXPECT_DOUBLE_EQ(i8800, 32.0);
  EXPECT_DOUBLE_EQ(i470, 8.0);
}

TEST(Coalescing, EffectiveBytesMultiplies) {
  auto d = geforce_gtx_470();
  EXPECT_DOUBLE_EQ(effective_global_bytes(d, 1000.0, 1, 4), 1000.0);
  // Raw inflation 2 at stride 2, but Fermi's caches absorb 85 % of the
  // redundant segment traffic: 1 + (2-1)*0.15 = 1.15.
  EXPECT_DOUBLE_EQ(effective_global_bytes(d, 1000.0, 2, 4), 1150.0);
}

TEST(Coalescing, ReuseAdjustedInflation) {
  // G80 has no cache: adjusted == raw. Fermi keeps only 15 % of the
  // redundancy.
  auto g80 = geforce_8800_gtx();
  EXPECT_DOUBLE_EQ(reuse_adjusted_inflation(g80, 8, 4),
                   strided_inflation(g80, 8, 4));
  auto fermi = geforce_gtx_470();
  const double raw = strided_inflation(fermi, 8, 4);
  EXPECT_DOUBLE_EQ(reuse_adjusted_inflation(fermi, 8, 4),
                   1.0 + (raw - 1.0) * 0.15);
}

TEST(Coalescing, RejectsZeroStride) {
  EXPECT_THROW((void)strided_inflation(geforce_gtx_470(), 0, 4),
               ContractError);
}

// ---------- bank conflicts ----------

TEST(BankConflicts, UnitStrideConflictFree) {
  for (const auto& d : device_registry()) {
    EXPECT_DOUBLE_EQ(bank_conflict_factor(d, 1, 4), 1.0) << d.name;
  }
}

TEST(BankConflicts, PowerOfTwoStridesCollide) {
  auto d = geforce_gtx_280();  // 16 banks
  EXPECT_DOUBLE_EQ(bank_conflict_factor(d, 2, 4), 2.0);
  EXPECT_DOUBLE_EQ(bank_conflict_factor(d, 4, 4), 4.0);
  EXPECT_DOUBLE_EQ(bank_conflict_factor(d, 16, 4), 16.0);
  EXPECT_DOUBLE_EQ(bank_conflict_factor(d, 32, 4), 16.0);  // gcd caps
}

TEST(BankConflicts, OddStrideConflictFree) {
  auto d = geforce_gtx_470();  // 32 banks
  EXPECT_DOUBLE_EQ(bank_conflict_factor(d, 3, 4), 1.0);
  EXPECT_DOUBLE_EQ(bank_conflict_factor(d, 17, 4), 1.0);
}

TEST(BankConflicts, DoublesOccupyTwoBanks) {
  auto d = geforce_gtx_280();
  // 8-byte elements at stride 1 -> word stride 2 -> 2-way conflicts.
  EXPECT_DOUBLE_EQ(bank_conflict_factor(d, 1, 8), 2.0);
}

// ---------- occupancy ----------

TEST(Occupancy, SimpleConfigFullyOccupies470) {
  LaunchConfig cfg;
  cfg.threads_per_block = 512;
  cfg.shared_bytes = 16 * 1024;
  cfg.regs_per_thread = 20;
  auto occ = compute_occupancy(geforce_gtx_470(), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 3);  // 1536/512 threads, 48K/16K shared
  EXPECT_EQ(occ.warps_per_sm, 48);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
}

TEST(Occupancy, RegistersLimit8800) {
  // The 256-equation PCR-Thomas block: 256 threads * 32 regs = full file.
  LaunchConfig cfg;
  cfg.threads_per_block = 256;
  cfg.shared_bytes = 8 * 1024;
  cfg.regs_per_thread = 32;
  auto occ = compute_occupancy(geforce_8800_gtx(), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_STREQ(occ.limiter, "registers");
}

TEST(Occupancy, UnlaunchableWhenBlockTooBig) {
  LaunchConfig cfg;
  cfg.threads_per_block = 1024;  // > 512 limit on GT200
  auto occ = compute_occupancy(geforce_gtx_280(), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 0);
  EXPECT_STREQ(occ.limiter, "threads_per_block");
}

TEST(Occupancy, UnlaunchableWhenSharedTooBig) {
  LaunchConfig cfg;
  cfg.threads_per_block = 64;
  cfg.shared_bytes = 17 * 1024;  // > 16K on GT200
  auto occ = compute_occupancy(geforce_gtx_280(), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 0);
  EXPECT_STREQ(occ.limiter, "shared_memory");
}

TEST(Occupancy, MaxBlocksCap) {
  LaunchConfig cfg;
  cfg.threads_per_block = 32;
  cfg.shared_bytes = 0;
  cfg.regs_per_thread = 8;
  auto occ = compute_occupancy(geforce_gtx_470(), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 8);  // capped by max_blocks_per_sm
}

// ---------- cost model ----------

TEST(CostModel, MemoryBoundKernelScalesWithBytes) {
  auto spec = geforce_gtx_470();
  LaunchConfig cfg;
  cfg.blocks = 1024;
  cfg.threads_per_block = 256;
  cfg.regs_per_thread = 16;

  KernelCost cost1, cost2;
  for (std::size_t b = 0; b < cfg.blocks; ++b) {
    BlockCost bc;
    bc.global_bytes_eff = 1e5;
    cost1.add_block(bc);
    bc.global_bytes_eff = 2e5;
    cost2.add_block(bc);
  }
  auto t1 = kernel_time(spec, cfg, cost1);
  auto t2 = kernel_time(spec, cfg, cost2);
  EXPECT_NEAR((t2.seconds - t2.launch_seconds) /
                  (t1.seconds - t1.launch_seconds),
              2.0, 1e-6);
}

TEST(CostModel, PeakBandwidthAchievedAtFullOccupancy) {
  auto spec = geforce_gtx_470();
  LaunchConfig cfg;
  cfg.blocks = 4096;
  cfg.threads_per_block = 512;
  cfg.shared_bytes = 16 * 1024;
  cfg.regs_per_thread = 20;
  KernelCost cost;
  for (std::size_t b = 0; b < cfg.blocks; ++b) {
    BlockCost bc;
    bc.global_bytes_eff = 1e6;
    cost.add_block(bc);
  }
  auto st = kernel_time(spec, cfg, cost);
  // The tail wave leaves a whisker below full occupancy on average.
  EXPECT_GT(st.hiding_factor, 0.98);
  EXPECT_NEAR(st.mem_seconds, 4096e6 / (133.9e9), 1e-3);
}

TEST(CostModel, TinyGridStarvesBandwidth) {
  auto spec = geforce_gtx_470();
  LaunchConfig cfg;
  cfg.blocks = 1;  // single block cannot hide latency
  cfg.threads_per_block = 256;
  cfg.regs_per_thread = 16;
  KernelCost cost;
  BlockCost bc;
  bc.global_bytes_eff = 1e6;
  cost.add_block(bc);
  auto st = kernel_time(spec, cfg, cost);
  EXPECT_LT(st.hiding_factor, 0.3);
}

TEST(CostModel, LaunchOverheadAlwaysPresent) {
  auto spec = geforce_8800_gtx();
  LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 32;
  cfg.regs_per_thread = 8;
  KernelCost cost;
  cost.add_block(BlockCost{});
  auto st = kernel_time(spec, cfg, cost);
  EXPECT_GE(st.seconds, spec.launch_overhead_us * 1e-6);
}

TEST(CostModel, CriticalPathFloorsLatencyBoundKernels) {
  auto spec = geforce_gtx_470();
  LaunchConfig cfg;
  cfg.blocks = static_cast<std::size_t>(spec.sm_count);
  cfg.threads_per_block = 32;
  cfg.regs_per_thread = 16;
  KernelCost cost;
  for (std::size_t b = 0; b < cfg.blocks; ++b) {
    BlockCost bc;
    bc.throughput_cycles = 10.0;      // trivial throughput
    bc.critical_cycles = 100000.0;    // long dependent chain
    cost.add_block(bc);
  }
  auto st = kernel_time(spec, cfg, cost);
  const double chain_seconds = 100000.0 / (spec.clock_ghz * 1e9);
  EXPECT_GE(st.compute_seconds, chain_seconds * 0.99);
}

TEST(CostModel, RejectsUnlaunchable) {
  auto spec = geforce_gtx_280();
  LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 1024;  // too big
  KernelCost cost;
  cost.add_block(BlockCost{});
  EXPECT_THROW((void)kernel_time(spec, cfg, cost), ContractError);
}

// ---------- launcher ----------

TEST(Launcher, ExecutesEveryBlockOnce) {
  Device dev(geforce_gtx_470());
  LaunchConfig cfg;
  cfg.blocks = 37;
  cfg.threads_per_block = 64;
  cfg.regs_per_thread = 16;
  std::vector<int> counts(37, 0);
  dev.launch(cfg, [&](BlockContext& ctx) { counts[ctx.block_index()]++; });
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(Launcher, AccumulatesTimeline) {
  Device dev(geforce_gtx_280());
  LaunchConfig cfg;
  cfg.blocks = 4;
  cfg.threads_per_block = 64;
  cfg.regs_per_thread = 16;
  EXPECT_EQ(dev.elapsed_seconds(), 0.0);
  dev.launch(cfg, [](BlockContext&) {});
  const double t1 = dev.elapsed_seconds();
  EXPECT_GT(t1, 0.0);
  dev.launch(cfg, [](BlockContext&) {});
  EXPECT_GT(dev.elapsed_seconds(), t1);
  EXPECT_EQ(dev.kernels_launched(), 2u);
  dev.reset_timeline();
  EXPECT_EQ(dev.elapsed_seconds(), 0.0);
  EXPECT_EQ(dev.kernels_launched(), 0u);
}

TEST(Launcher, SharedAllocationEnforcesBudget) {
  Device dev(geforce_gtx_280());
  LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 32;
  cfg.shared_bytes = 1024;
  cfg.regs_per_thread = 16;
  EXPECT_THROW(dev.launch(cfg,
                          [](BlockContext& ctx) {
                            (void)ctx.shared_alloc<float>(300);  // 1200 B
                          }),
               ContractError);
  // Within budget is fine and data is usable.
  dev.launch(cfg, [](BlockContext& ctx) {
    auto s = ctx.shared_alloc<float>(256);
    s[0] = 1.0f;
    s[255] = 2.0f;
    EXPECT_EQ(s[0] + s[255], 3.0f);
  });
}

TEST(Launcher, ChargesAffectTime) {
  Device dev(geforce_gtx_470());
  LaunchConfig cfg;
  cfg.blocks = 128;
  cfg.threads_per_block = 256;
  cfg.regs_per_thread = 16;
  auto cheap = dev.launch(cfg, [](BlockContext&) {});
  auto costly = dev.launch(cfg, [](BlockContext& ctx) {
    ctx.charge_global(1e6, 1, 4);
    ctx.charge_phase(256, 100.0, 10.0);
  });
  EXPECT_GT(costly.seconds, cheap.seconds);
}

TEST(Launcher, RejectsOversizedGrid) {
  Device dev(geforce_8800_gtx());
  LaunchConfig cfg;
  cfg.blocks = 65536ull * 65536ull;  // beyond even a 2-D grid
  cfg.threads_per_block = 32;
  EXPECT_THROW(dev.launch(cfg, [](BlockContext&) {}), ContractError);
}

TEST(Launcher, UncoalescedChargeCostsMore) {
  Device dev(geforce_gtx_280());
  LaunchConfig cfg;
  cfg.blocks = 1024;
  cfg.threads_per_block = 256;
  cfg.regs_per_thread = 16;
  auto coalesced = dev.launch(cfg, [](BlockContext& ctx) {
    ctx.charge_global(1e5, 1, 4);
  });
  auto strided = dev.launch(cfg, [](BlockContext& ctx) {
    ctx.charge_global(1e5, 64, 4);
  });
  // Raw 16x inflation, halved by GT200's cross-block reuse -> 8.5x.
  EXPECT_GT(strided.mem_seconds, 5.0 * coalesced.mem_seconds);
}

}  // namespace

// ---------- probes (micro-benchmarks over the simulator) ----------
// Appended tests: keep the anonymous namespace happy by reopening it.

#include "gpusim/probes.hpp"

namespace {

using namespace tda::gpusim;

TEST(Probes, PeakBandwidthNearTableOne) {
  for (const auto& spec : device_registry()) {
    Device dev(spec);
    auto bw = probe_bandwidth(dev, 64ull * spec.sm_count, 256, 1 << 20);
    EXPECT_GT(bw, spec.global_bw_gb_s * 0.9) << spec.name;
    EXPECT_LE(bw, spec.global_bw_gb_s * 1.001) << spec.name;
  }
}

TEST(Probes, StarvedMachineLosesBandwidth) {
  Device dev(geforce_gtx_470());
  auto rep = run_probes(dev);
  EXPECT_LT(rep.starved_bandwidth_gb_s, rep.peak_bandwidth_gb_s * 0.25);
}

TEST(Probes, InflationSaturationTracksSegmentSize) {
  // The probe must discover the (unqueryable) transaction granularity:
  // worst-case inflation saturates at segment/elem elements.
  Device d8800(geforce_8800_gtx());
  EXPECT_EQ(run_probes(d8800).inflation_saturation_stride, 32u);
  Device d280(geforce_gtx_280());
  EXPECT_EQ(run_probes(d280).inflation_saturation_stride, 16u);
  Device d470(geforce_gtx_470());
  EXPECT_EQ(run_probes(d470).inflation_saturation_stride, 8u);
}

TEST(Probes, InflationMonotoneThenFlat) {
  Device dev(geforce_gtx_280());
  auto rep = run_probes(dev);
  double prev = 1.0;
  for (auto [s, infl] : rep.stride_inflation) {
    EXPECT_GE(infl, prev * 0.999) << "stride " << s;
    prev = infl;
  }
}

TEST(Probes, LaunchOverheadMatchesHiddenSpec) {
  for (const auto& spec : device_registry()) {
    Device dev(spec);
    EXPECT_NEAR(probe_launch_overhead(dev), spec.launch_overhead_us,
                spec.launch_overhead_us * 0.5)
        << spec.name;
  }
}

TEST(Probes, DependentChainsCostMore) {
  Device dev(geforce_gtx_470());
  auto rep = run_probes(dev);
  EXPECT_GT(rep.dependency_penalty, 1.5);
}

}  // namespace

// ---------- kernel trace ----------

#include "kernels/device_batch.hpp"
#include "kernels/pcr_thomas_kernel.hpp"
#include "kernels/split_kernels.hpp"
#include "tridiag/batch.hpp"

namespace {

using namespace tda;

TEST(Trace, DisabledByDefault) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  gpusim::LaunchConfig cfg;
  cfg.blocks = 2;
  cfg.threads_per_block = 64;
  cfg.regs_per_thread = 16;
  dev.launch(cfg, [](gpusim::BlockContext&) {});
  EXPECT_TRUE(dev.trace().empty());
}

TEST(Trace, RecordsNamedLaunches) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  dev.enable_trace();
  gpusim::LaunchConfig cfg;
  cfg.blocks = 3;
  cfg.threads_per_block = 128;
  cfg.regs_per_thread = 16;
  dev.launch(cfg, [](gpusim::BlockContext& ctx) {
    ctx.charge_global(1e4, 1, 4);
  }, "probe_a");
  dev.launch(cfg, [](gpusim::BlockContext&) {}, "probe_b");
  ASSERT_EQ(dev.trace().size(), 2u);
  EXPECT_EQ(dev.trace()[0].name, "probe_a");
  EXPECT_EQ(dev.trace()[0].blocks, 3u);
  EXPECT_EQ(dev.trace()[0].threads_per_block, 128);
  EXPECT_GT(dev.trace()[0].stats.mem_seconds, 0.0);
  EXPECT_EQ(dev.trace()[1].name, "probe_b");
  dev.clear_trace();
  EXPECT_TRUE(dev.trace().empty());
}

TEST(Trace, SolverStagesAppearWithTheirNames) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  dev.enable_trace();
  // A solve that exercises all three kernel kinds: 1 system, big n.
  auto probe_batch = [&] {
    // inline include-free construction via the kernels layer
  };
  (void)probe_batch;
  // Use the public stage functions directly.
  {
    tridiag::TridiagBatch<double> host(1, 4096);
    for (std::size_t i = 0; i < 4096; ++i) {
      host.b()[i] = 4.0;
      host.a()[i] = (i == 0) ? 0.0 : 1.0;
      host.c()[i] = (i == 4095) ? 0.0 : 1.0;
      host.d()[i] = 1.0;
    }
    kernels::DeviceBatch<double> dbatch(host);
    kernels::SplitState st;
    kernels::stage1_split_step(dev, dbatch, st);
    kernels::stage2_split(dev, dbatch, st, 3);
    kernels::pcr_thomas_stage(dev, dbatch, st, 64,
                              kernels::LoadVariant::Strided);
  }
  ASSERT_EQ(dev.trace().size(), 3u);
  EXPECT_EQ(dev.trace()[0].name, "stage1_coop_split");
  EXPECT_EQ(dev.trace()[1].name, "stage2_independent_split");
  EXPECT_EQ(dev.trace()[2].name, "pcr_thomas_strided");
}

}  // namespace
