// Tests for the GPU-sim kernels: splitting stages, the PCR-Thomas base
// kernel (both load variants), the baseline shared-memory kernels and the
// configuration helpers.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "gpusim/launch.hpp"
#include "kernels/config.hpp"
#include "kernels/device_batch.hpp"
#include "kernels/pcr_thomas_kernel.hpp"
#include "kernels/shared_kernels.hpp"
#include "kernels/split_kernels.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"

namespace {

using namespace tda;
using namespace tda::kernels;
using tridiag::make_diag_dominant;
using tridiag::make_poisson;

// ---------- config helpers (the paper's per-device on-chip maxima) ----------

TEST(Config, MaxSharedSystemSizesMatchPaper) {
  // §V: "the largest systems that can be solved locally on-chip are of
  // sizes 256, 512, and 1024 respectively for the GeForce 8800, 280, 470"
  EXPECT_EQ(max_shared_system_size(gpusim::geforce_8800_gtx().query(), 4),
            256u);
  EXPECT_EQ(max_shared_system_size(gpusim::geforce_gtx_280().query(), 4),
            512u);
  EXPECT_EQ(max_shared_system_size(gpusim::geforce_gtx_470().query(), 4),
            1024u);
}

TEST(Config, DoublePrecisionHalvesSharedCapacity) {
  // 16K shared / (5 arrays * 8B) = 409 -> 256 on the GTX 280 (vs 512 in
  // fp32); the GTX 470 stays thread-limited at 1024.
  const auto q280 = gpusim::geforce_gtx_280().query();
  EXPECT_EQ(max_shared_system_size(q280, 8), 256u);
  const auto q470 = gpusim::geforce_gtx_470().query();
  EXPECT_EQ(max_shared_system_size(q470, 8), 1024u);
}

TEST(Config, SharedBytesFormula) {
  EXPECT_EQ(pcr_thomas_shared_bytes(256, 4), 5u * 256 * 4);
}

// ---------- DeviceBatch ----------

TEST(DeviceBatch, UploadDownloadRoundTrip) {
  auto host = make_diag_dominant<double>(3, 17, 61);
  DeviceBatch<double> dev(host);
  EXPECT_EQ(dev.num_systems(), 3u);
  EXPECT_EQ(dev.system_size(), 17u);
  auto sys = dev.cur_system(1);
  auto href = host.system(1);
  for (std::size_t i = 0; i < 17; ++i) {
    EXPECT_EQ(sys.b[i], href.b[i]);
  }
  // Write a fake solution and download.
  for (std::size_t k = 0; k < dev.x().size(); ++k)
    dev.x()[k] = static_cast<double>(k);
  dev.download(host);
  EXPECT_EQ(host.x()[5], 5.0);
}

TEST(DeviceBatch, SwapFlipsBuffers) {
  auto host = make_diag_dominant<double>(1, 8, 62);
  DeviceBatch<double> dev(host);
  dev.alt_system(0).b[0] = 123.0;
  dev.swap_buffers();
  EXPECT_EQ(dev.cur_system(0).b[0], 123.0);
}

TEST(DeviceBatch, ShapeOnlyConstructorIsInert) {
  DeviceBatch<float> dev(2, 16);
  EXPECT_EQ(dev.cur_system(0).b[3], 1.0f);  // unit diagonal
  EXPECT_EQ(dev.cur_system(0).a[3], 0.0f);
}

// ---------- full split + solve pipeline, all devices ----------

struct PipelineCase {
  std::size_t m, n;
  std::size_t stage1_steps;
  std::size_t stage2_steps;
  std::size_t thomas_switch;
  LoadVariant variant;
};

class KernelPipeline
    : public ::testing::TestWithParam<std::tuple<int, PipelineCase>> {};

TEST_P(KernelPipeline, SolvesCorrectly) {
  const auto [dev_idx, pc] = GetParam();
  auto specs = gpusim::device_registry();
  gpusim::Device dev(specs[static_cast<std::size_t>(dev_idx)]);

  auto host = make_diag_dominant<double>(pc.m, pc.n, 70 + pc.m + pc.n);
  auto pristine = host;
  DeviceBatch<double> dbatch(host);
  SplitState st;
  for (std::size_t i = 0; i < pc.stage1_steps; ++i)
    stage1_split_step(dev, dbatch, st);
  if (pc.stage2_steps > 0) stage2_split(dev, dbatch, st, pc.stage2_steps);
  pcr_thomas_stage(dev, dbatch, st, pc.thomas_switch, pc.variant);
  dbatch.download(host);

  EXPECT_LT(tridiag::batch_residual_inf(pristine, host.x()), 1e-9)
      << "m=" << pc.m << " n=" << pc.n;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, KernelPipeline,
    ::testing::Combine(
        ::testing::Values(0, 1, 2),
        ::testing::Values(
            // no splits: base kernel only
            PipelineCase{4, 64, 0, 0, 16, LoadVariant::Strided},
            // stage 2 only
            PipelineCase{3, 512, 0, 2, 32, LoadVariant::Strided},
            // stage 1 only
            PipelineCase{1, 256, 2, 0, 16, LoadVariant::Strided},
            // all stages
            PipelineCase{2, 1024, 2, 2, 32, LoadVariant::Strided},
            // coalesced variant
            PipelineCase{2, 1024, 1, 3, 64, LoadVariant::Coalesced},
            // non-power-of-two size
            PipelineCase{3, 777, 1, 2, 16, LoadVariant::Strided},
            // deep thomas switch
            PipelineCase{1, 2048, 3, 1, 128, LoadVariant::Strided})));

// ---------- stage semantics ----------

TEST(SplitState, PartsAndSizes) {
  SplitState st;
  EXPECT_EQ(st.parts(), 1u);
  st.splits = 3;
  EXPECT_EQ(st.parts(), 8u);
  EXPECT_EQ(st.max_sub_size(100), 13u);  // ceil(100/8)
}

TEST(Stage1, EachStepIsOneLaunch) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  auto host = make_diag_dominant<double>(1, 128, 81);
  DeviceBatch<double> dbatch(host);
  SplitState st;
  stage1_split_step(dev, dbatch, st);
  stage1_split_step(dev, dbatch, st);
  EXPECT_EQ(dev.kernels_launched(), 2u);
  EXPECT_EQ(st.splits, 2u);
}

TEST(Stage2, ManyStepsOneLaunch) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  auto host = make_diag_dominant<double>(4, 256, 82);
  DeviceBatch<double> dbatch(host);
  SplitState st;
  stage2_split(dev, dbatch, st, 3);
  EXPECT_EQ(dev.kernels_launched(), 1u);
  EXPECT_EQ(st.splits, 3u);
}

TEST(Stage2, RefusesToSplitBelowOneEquation) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  auto host = make_diag_dominant<double>(1, 8, 83);
  DeviceBatch<double> dbatch(host);
  SplitState st;
  EXPECT_THROW(stage2_split(dev, dbatch, st, 4), ContractError);
}

TEST(Stage1, RefusesWhenFullyDecoupled) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  auto host = make_diag_dominant<double>(1, 4, 84);
  DeviceBatch<double> dbatch(host);
  SplitState st;
  stage1_split_step(dev, dbatch, st);
  stage1_split_step(dev, dbatch, st);
  EXPECT_THROW(stage1_split_step(dev, dbatch, st), ContractError);
}

TEST(Stage1And2, ProduceIdenticalCoefficients) {
  // The two stages implement the same math with different launch
  // structure: k splits via stage 1 must equal k splits via stage 2.
  auto host = make_diag_dominant<double>(2, 64, 85);
  gpusim::Device dev(gpusim::geforce_gtx_280());

  DeviceBatch<double> d1(host);
  SplitState s1;
  stage1_split_step(dev, d1, s1);
  stage1_split_step(dev, d1, s1);

  DeviceBatch<double> d2(host);
  SplitState s2;
  stage2_split(dev, d2, s2, 2);

  for (std::size_t s = 0; s < 2; ++s) {
    auto v1 = d1.cur_system(s);
    auto v2 = d2.cur_system(s);
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_NEAR(v1.b[i], v2.b[i], 1e-12);
      EXPECT_NEAR(v1.d[i], v2.d[i], 1e-12);
      EXPECT_NEAR(v1.a[i], v2.a[i], 1e-12);
      EXPECT_NEAR(v1.c[i], v2.c[i], 1e-12);
    }
  }
}

// ---------- cost-only mode ----------

TEST(ExecMode, CostOnlyChargesIdenticalTime) {
  auto host = make_diag_dominant<double>(4, 512, 86);
  gpusim::Device dev_full(gpusim::geforce_gtx_470());
  gpusim::Device dev_cost(gpusim::geforce_gtx_470());

  DeviceBatch<double> f(host);
  SplitState sf;
  stage1_split_step(dev_full, f, sf, ExecMode::Full);
  stage2_split(dev_full, f, sf, 1, ExecMode::Full);
  pcr_thomas_stage(dev_full, f, sf, 32, LoadVariant::Strided,
                   ExecMode::Full);

  DeviceBatch<double> c(4, 512);
  SplitState sc;
  stage1_split_step(dev_cost, c, sc, ExecMode::CostOnly);
  stage2_split(dev_cost, c, sc, 1, ExecMode::CostOnly);
  pcr_thomas_stage(dev_cost, c, sc, 32, LoadVariant::Strided,
                   ExecMode::CostOnly);

  EXPECT_DOUBLE_EQ(dev_full.elapsed_seconds(), dev_cost.elapsed_seconds());
}

// ---------- variant cost behaviour ----------

TEST(Variants, CoalescedCheaperAtSmallStride) {
  // 2 splits -> stride 4: boundary leakage is small, the coalesced load
  // beats the 4x-inflated strided gather.
  auto host = make_diag_dominant<double>(8, 1024, 87);
  gpusim::Device dev(gpusim::geforce_gtx_280());
  double t[2];
  int k = 0;
  for (auto variant : {LoadVariant::Strided, LoadVariant::Coalesced}) {
    DeviceBatch<double> d(host);
    SplitState st;
    stage2_split(dev, d, st, 2);
    auto ks = pcr_thomas_stage(dev, d, st, 64, variant);
    t[k++] = ks.seconds;
  }
  EXPECT_LT(t[1], t[0]);
}

TEST(Variants, StridedCheaperAtHugeStride) {
  // Many splits -> huge stride: strided inflation caps while coalesced
  // boundary traffic keeps growing.
  auto host = make_diag_dominant<double>(1, 16384, 88);
  gpusim::Device dev(gpusim::geforce_gtx_280());
  double t[2];
  int k = 0;
  for (auto variant : {LoadVariant::Strided, LoadVariant::Coalesced}) {
    DeviceBatch<double> d(host);
    SplitState st;
    stage2_split(dev, d, st, 7);  // stride 128
    auto ks = pcr_thomas_stage(dev, d, st, 64, variant);
    t[k++] = ks.seconds;
  }
  EXPECT_LT(t[0], t[1]);
}

// ---------- baseline shared-memory kernels ----------

class BaselineKernels : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BaselineKernels, AllSolveCorrectly) {
  const std::size_t n = GetParam();
  auto host = make_diag_dominant<double>(5, n, 90 + n);
  auto pristine = host;
  gpusim::Device dev(gpusim::geforce_gtx_470());

  {
    DeviceBatch<double> d(host);
    pure_pcr_kernel(dev, d);
    d.download(host);
    EXPECT_LT(tridiag::batch_residual_inf(pristine, host.x()), 1e-9)
        << "pure-pcr n=" << n;
  }
  {
    DeviceBatch<double> d(host);
    cr_kernel(dev, d);
    d.download(host);
    EXPECT_LT(tridiag::batch_residual_inf(pristine, host.x()), 1e-9)
        << "cr n=" << n;
  }
  {
    DeviceBatch<double> d(host);
    cr_pcr_kernel(dev, d, 16);
    d.download(host);
    EXPECT_LT(tridiag::batch_residual_inf(pristine, host.x()), 1e-9)
        << "cr-pcr n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BaselineKernels,
                         ::testing::Values(2, 3, 16, 100, 128, 255, 512));

TEST(BaselineKernels, CrSuffersBankConflicts) {
  // On a 16-bank device, CR's power-of-two strides must cost more per
  // element than the conflict-free PCR-Thomas kernel's shared phases.
  auto host = make_poisson<double>(8, 256, 13);
  gpusim::Device dev(gpusim::geforce_gtx_280());
  DeviceBatch<double> d1(host);
  auto t_cr = cr_kernel(dev, d1);
  DeviceBatch<double> d2(host);
  SplitState st;
  auto t_hybrid = pcr_thomas_stage(dev, d2, st, 64, LoadVariant::Strided);
  // CR is work-efficient, so this is not a foregone conclusion; the
  // conflicts and the serial tail are what cost it (§III-A).
  EXPECT_GT(t_cr.compute_seconds, t_hybrid.compute_seconds * 0.5);
}

// ---------- float path through the full pipeline ----------

TEST(KernelPipelineFloat, SolvesLargeBatch) {
  auto host = make_diag_dominant<float>(16, 2048, 91);
  auto pristine = host;
  gpusim::Device dev(gpusim::geforce_gtx_470());
  DeviceBatch<float> dbatch(host);
  SplitState st;
  stage2_split(dev, dbatch, st, 2);
  pcr_thomas_stage(dev, dbatch, st, 128, LoadVariant::Strided);
  dbatch.download(host);
  EXPECT_LT(tridiag::batch_residual_inf(pristine, host.x()), 1e-3);
}

}  // namespace
