// Ablation for §VI-C: the multi-stage + auto-tuning strategy applied to
// another divide-and-conquer algorithm — bottom-up merge sort. The paper
// argues the tridiagonal solver's structure (shared-memory base kernel,
// independent mid-stage, cooperative top-stage, tuned switch points)
// carries over to "many divide-and-conquer algorithms"; this harness
// measures exactly that on the same simulated devices.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dnc/mergesort.hpp"

using namespace tda;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::cout << "Ablation §VI-C — auto-tuned multi-stage merge sort "
               "(fp32 keys, simulated ms)\n\n";

  const std::vector<std::size_t> sizes{1 << 16, 1 << 20, 1 << 23};

  TextTable table;
  table.set_header({"device", "n", "default ms", "static ms", "tuned ms",
                    "tuned chunk", "tuned coop", "vs default",
                    "vs static"});

  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    bench::TelemetryScope telemetry_scope(dev, spec.name);
    for (std::size_t n : sizes) {
      dnc::MultiStageSorter<float> def(dev, dnc::default_sort_points());
      dnc::MultiStageSorter<float> sta(
          dev, dnc::static_sort_points<float>(dev.query()));
      auto tuned = dnc::tune_sorter<float>(dev, n);
      dnc::MultiStageSorter<float> dyn(dev, tuned.points);

      const double t_def = def.simulate_ms(n);
      const double t_sta = sta.simulate_ms(n);
      const double t_dyn = dyn.simulate_ms(n);

      table.add_row({bench::short_name(spec.name), std::to_string(n),
                     TextTable::num(t_def, 3), TextTable::num(t_sta, 3),
                     TextTable::num(t_dyn, 3),
                     std::to_string(tuned.points.chunk_size),
                     std::to_string(tuned.points.coop_threshold),
                     TextTable::num(t_def / t_dyn, 2) + "x",
                     TextTable::num(t_sta / t_dyn, 2) + "x"});
    }
  }
  table.print(std::cout);

  // Functional validation on one configuration.
  {
    gpusim::Device dev(gpusim::geforce_gtx_470());
    bench::TelemetryScope telemetry_scope(dev, "sweep");
    auto tuned = dnc::tune_sorter<float>(dev, 1 << 20);
    dnc::MultiStageSorter<float> sorter(dev, tuned.points);
    Rng rng(99);
    std::vector<float> data(1 << 20);
    for (auto& v : data) v = static_cast<float>(rng.uniform(-1e6, 1e6));
    sorter.sort(data);
    const bool sorted = std::is_sorted(data.begin(), data.end());
    std::cout << "\nvalidation: tuned sorter on 2^20 keys — "
              << (sorted ? "sorted [OK]" : "NOT sorted [FAIL]") << "\n";
  }
  std::cout << "\n(same pattern as the tridiagonal solver: the tuned "
               "switch points beat the\n machine-oblivious and query-only "
               "choices, and the optima are device-specific)\n";
  return 0;
}
