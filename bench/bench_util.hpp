#pragma once
// Shared helpers for the figure/table reproduction harnesses.

#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/alloc_stats.hpp"
#include "common/buffer_pool.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "kernels/device_batch.hpp"
#include "solver/gpu_solver.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "tuning/dynamic_tuner.hpp"
#include "tuning/tuners.hpp"

namespace tda::bench {

/// Env-gated telemetry for a bench run: with TDA_TRACE / TDA_METRICS
/// set, every solve the scoped device performs records spans + metrics,
/// and the machine-readable files are written at scope exit — each
/// figure table gains a per-stage timing sidecar for free. `suffix`
/// keeps multi-device sweeps from clobbering one file (it is inserted
/// before the extension, e.g. "out.Geforce_GTX_280.json").
class TelemetryScope {
 public:
  explicit TelemetryScope(gpusim::Device& dev, std::string suffix = {})
      : env_(tel_, std::move(suffix)), dev_(&dev) {
    if (env_.active()) dev_->set_telemetry(&tel_);
  }
  ~TelemetryScope() {
    if (env_.active()) dev_->set_telemetry(nullptr);
  }
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  [[nodiscard]] bool active() const { return env_.active(); }
  [[nodiscard]] tda::telemetry::Telemetry& telemetry() { return tel_; }

 private:
  tda::telemetry::Telemetry tel_;
  tda::telemetry::EnvExport env_;
  gpusim::Device* dev_;
};

/// Prints the buffer-pool / host-allocation picture of the run and, when
/// a registry is given and enabled, publishes the same numbers as gauges
/// (identical names to SolveService::publish_gauges, so bench sidecars
/// and service exports line up). Figure benches route their generator
/// batches through BatchStorage::Pooled — this is where that shows up.
inline void report_alloc_gauges(std::ostream& os,
                                tda::telemetry::MetricsRegistry* mx =
                                    nullptr) {
  const auto ps = tda::BufferPool::global().stats();
  const double hit_rate =
      ps.acquires > 0
          ? static_cast<double>(ps.hits) / static_cast<double>(ps.acquires)
          : 0.0;
  if (mx != nullptr && mx->enabled()) {
    mx->set("pool.hit_rate", hit_rate);
    mx->set("pool.cached_bytes", static_cast<double>(ps.cached_bytes));
    mx->set("pool.outstanding_bytes",
            static_cast<double>(ps.outstanding_bytes));
    mx->set("host.alloc_count", static_cast<double>(host_alloc_count()));
  }
  os << "allocations: pool acquires " << ps.acquires << " (hits " << ps.hits
     << ", misses " << ps.misses << ", hit rate "
     << TextTable::num(100.0 * hit_rate, 1) << "%), cached "
     << ps.cached_bytes / 1024 << " KiB, host allocs "
     << host_alloc_count() << "\n";
}

/// Short device labels used in the paper's figures.
inline std::string short_name(const std::string& full) {
  if (full.find("8800") != std::string::npos) return "Geforce 8800";
  if (full.find("280") != std::string::npos) return "Geforce 280";
  if (full.find("470") != std::string::npos) return "Geforce 470";
  return full;
}

/// Simulated solve time for a workload under given switch points
/// (cost-only run on a reusable scratch batch).
template <typename T>
double timed_ms(gpusim::Device& dev, kernels::DeviceBatch<T>& scratch,
                const solver::SwitchPoints& sp) {
  solver::GpuTridiagonalSolver<T> s(dev, sp);
  return s.run(scratch, kernels::ExecMode::CostOnly).total_ms;
}

/// Best Thomas switch / variant for a fixed stage-3 size (the "tune for
/// the ideal stage-3 to stage-4 switch point for each setting" step the
/// paper prescribes before comparing stage-3 sizes).
template <typename T>
std::pair<solver::SwitchPoints, double> best_inner(
    gpusim::Device& dev, kernels::DeviceBatch<T>& scratch,
    solver::SwitchPoints base, std::size_t stage3_size) {
  base.stage3_system_size = stage3_size;
  solver::SwitchPoints best = base;
  double best_ms = std::numeric_limits<double>::infinity();
  for (auto variant :
       {kernels::LoadVariant::Strided, kernels::LoadVariant::Coalesced}) {
    for (std::size_t th = 16; th <= stage3_size; th *= 2) {
      solver::SwitchPoints sp = base;
      sp.variant = variant;
      sp.thomas_switch = th;
      const double ms = timed_ms(dev, scratch, sp);
      if (ms < best_ms) {
        best_ms = ms;
        best = sp;
      }
    }
  }
  return {best, best_ms};
}

}  // namespace tda::bench
