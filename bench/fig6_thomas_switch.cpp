// Reproduces paper Figure 6: performance of the PCR-Thomas solver at
// various stage-3 to stage-4 switch points (the number of subsystems
// handed to per-thread Thomas), normalized to the best switch point.
//
// Paper observations: best switch point is 64 subsystems on the
// GeForce 8800 and 128 on the GTX 280 and 470 — which is why the static
// tuner's universal guess of 64 leaves performance behind on newer parts.

#include <iostream>
#include <limits>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace tda;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t m = static_cast<std::size_t>(cli.get_int("m", 4096));

  std::cout << "Figure 6 — PCR-Thomas (stage-3 to stage-4) switch point "
               "sweep\nworkload: "
            << m
            << " systems, each sized to the device's tuned on-chip system "
               "size, fp32\n\n";

  const std::vector<std::size_t> sweep{16, 32, 64, 128, 256, 512};
  const char* paper_best[] = {"64", "128", "128"};

  TextTable table("relative performance (1.0 = best switch point)");
  table.set_header({"device", "n_onchip", "16", "32", "64", "128", "256",
                    "512", "best", "paper-best"});

  int di = 0;
  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    bench::TelemetryScope telemetry_scope(dev, spec.name);
    // Tune the stage-3 size first (the decoupling the paper prescribes),
    // then sweep the Thomas switch at that size.
    tuning::DynamicTuner<float> tuner(dev);
    auto tuned = tuner.tune({m, 2048});
    const std::size_t n = tuned.points.stage3_system_size;

    kernels::DeviceBatch<float> scratch(m, n);
    auto base = tuned.points;

    std::vector<double> ms(sweep.size(),
                           std::numeric_limits<double>::infinity());
    double best_ms = std::numeric_limits<double>::infinity();
    std::size_t best_th = 0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      if (sweep[i] > n) continue;
      auto sp = base;
      sp.thomas_switch = sweep[i];
      ms[i] = bench::timed_ms(dev, scratch, sp);
      if (ms[i] < best_ms) {
        best_ms = ms[i];
        best_th = sweep[i];
      }
    }

    std::vector<std::string> row{bench::short_name(spec.name),
                                 std::to_string(n)};
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      row.push_back(std::isinf(ms[i]) ? "n/a"
                                      : TextTable::num(best_ms / ms[i], 3));
    }
    row.push_back(std::to_string(best_th));
    row.push_back(paper_best[di++]);
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
