// Reproduces paper Figure 5: relative performance at various switch
// points from stage 2 (global splitting) to stage 3 (solving in shared
// memory), per GPU, normalized to the best switch point.
//
// Paper observations this harness should reproduce:
//  * valid on-chip sizes top out at 256 / 512 / 1024 (8800 / 280 / 470);
//  * the 470 prefers 512 over 1024 even though 1024 fits (occupancy);
//  * the 280 performs comparably at 256 and 512;
//  * the 8800 prefers 256 over 128.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace tda;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t m = static_cast<std::size_t>(cli.get_int("m", 2048));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 2048));

  std::cout << "Figure 5 — stage-2 to stage-3 switch point sweep\n"
            << "workload: " << m << " systems x " << n
            << " equations, fp32\n\n";

  const std::vector<std::size_t> sweep{128, 256, 512, 1024};

  TextTable table("relative performance (1.0 = best switch point)");
  table.set_header({"device", "128", "256", "512", "1024", "best",
                    "paper-best"});
  const char* paper_best[] = {"256", "256-512", "512"};

  int di = 0;
  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    bench::TelemetryScope telemetry_scope(dev, spec.name);
    kernels::DeviceBatch<float> scratch(m, n);
    const std::size_t cap =
        kernels::max_shared_system_size(dev.query(), sizeof(float));
    auto base = tuning::static_switch_points<float>(dev.query());

    std::vector<double> ms(sweep.size(), 0.0);
    double best_ms = std::numeric_limits<double>::infinity();
    std::size_t best_size = 0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      if (sweep[i] > cap) continue;  // unlaunchable on this device
      auto [sp, t] = bench::best_inner(dev, scratch, base, sweep[i]);
      ms[i] = t;
      if (t < best_ms) {
        best_ms = t;
        best_size = sweep[i];
      }
    }

    std::vector<std::string> row{bench::short_name(spec.name)};
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      row.push_back(ms[i] == 0.0 ? "n/a"
                                 : TextTable::num(best_ms / ms[i], 3));
    }
    row.push_back(std::to_string(best_size));
    row.push_back(paper_best[di++]);
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
