// Reproduces paper Figure 8: the dynamically tuned GTX 470 solver vs the
// Intel MKL CPU baseline for the four paper workloads.
//
// Paper numbers (fp32):
//   workload   GPU ms   CPU ms   speedup
//   1Kx1K      0.96     10.70    11x
//   2Kx2K      5.52     37.90     7x
//   4Kx4K     27.92    168.30     6x
//   1x2M      50.40     34.00    0.7x   (CPU wins: PCR-dominated)
//
// The CPU column is the calibrated Core-i5/MKL model (DESIGN.md §2); the
// measured wall-clock of our own LU solver on the build host is printed
// alongside for reference (different machine, different absolute scale).

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "cpu/batch_solver.hpp"
#include "cpu/cost_model.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"

using namespace tda;

namespace {
struct Row {
  const char* label;
  std::size_t m, n;
  double paper_gpu_ms;
  double paper_cpu_ms;
};
}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool skip_host = cli.has("no-host-measure");

  const std::vector<Row> rows = {
      {"1Kx1K", 1024, 1024, 0.96, 10.70},
      {"2Kx2K", 2048, 2048, 5.52, 37.90},
      {"4Kx4K", 4096, 4096, 27.92, 168.30},
      {"1x2M", 1, 2 * 1024 * 1024, 50.40, 34.00},
  };

  std::cout << "Figure 8 — GPU (GTX 470, dynamically tuned) vs CPU "
               "(Core i5 MKL model), fp32\n\n";

  gpusim::Device dev(gpusim::geforce_gtx_470());
  bench::TelemetryScope telemetry_scope(dev);
  const auto cpu_spec = cpu::paper_core_i5();

  TextTable table("GPU vs CPU");
  table.set_header({"workload", "gpu_ms", "cpu_ms", "speedup", "paper_gpu",
                    "paper_cpu", "paper_speedup", "host_cpu_ms"});

  for (const auto& r : rows) {
    tuning::DynamicTuner<float> tuner(dev);
    auto dyn = tuner.tune({r.m, r.n});
    kernels::DeviceBatch<float> scratch(r.m, r.n);
    const double gpu_ms = bench::timed_ms(dev, scratch, dyn.points);
    const double cpu_ms = cpu::mkl_model_ms(cpu_spec, r.m, r.n, 4);

    double host_ms = 0.0;
    if (!skip_host) {
      auto batch = tridiag::make_diag_dominant<float>(
          r.m, r.n, 777, 2.0, tridiag::BatchStorage::Pooled);
      cpu::BatchCpuSolver host_solver(0);  // paper policy: 2 threads / 1
      host_ms = host_solver.solve(batch).wall_ms;
    }

    table.add_row({r.label, TextTable::num(gpu_ms, 2),
                   TextTable::num(cpu_ms, 2),
                   TextTable::num(cpu_ms / gpu_ms, 1) + "x",
                   TextTable::num(r.paper_gpu_ms, 2),
                   TextTable::num(r.paper_cpu_ms, 2),
                   TextTable::num(r.paper_cpu_ms / r.paper_gpu_ms, 1) + "x",
                   skip_host ? "-" : TextTable::num(host_ms, 2)});
  }
  table.print(std::cout);

  // Functional validation: both solvers produce correct answers on a
  // shared workload.
  {
    auto batch_gpu = tridiag::make_diag_dominant<float>(
        64, 1024, 99, 2.0, tridiag::BatchStorage::Pooled);
    auto batch_cpu = batch_gpu;
    auto pristine = batch_gpu;
    tuning::DynamicTuner<float> tuner(dev);
    auto dyn = tuner.tune({64, 1024});
    solver::GpuTridiagonalSolver<float> s(dev, dyn.points);
    s.solve(batch_gpu);
    cpu::BatchCpuSolver host_solver(2);
    host_solver.solve(batch_cpu);
    const double res_gpu =
        tridiag::batch_residual_inf(pristine, batch_gpu.x());
    const double res_cpu =
        tridiag::batch_residual_inf(pristine, batch_cpu.x());
    std::cout << "\nvalidation: GPU residual " << res_gpu
              << ", CPU residual " << res_cpu
              << ((res_gpu < 1e-3 && res_cpu < 1e-3) ? "  [OK]" : "  [FAIL]")
              << "\n";
  }

  std::cout << "\n";
  bench::report_alloc_gauges(std::cout,
                             &telemetry_scope.telemetry().metrics);

  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
