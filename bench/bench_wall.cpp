// Wall-clock throughput benchmark of the block-execution engine
// (docs/PERFORMANCE.md). Unlike the figure harnesses — which report
// SIMULATED GPU milliseconds from the cost model — this bench measures
// real host time: systems solved per wall second, per-stage host
// milliseconds, host allocation counts, and a thread-scaling curve over
// engine lane counts. Its JSON output (BENCH_wall.json) is the perf
// baseline that scripts/bench_diff.py gates CI regressions against.
//
// Flags:
//   --systems=512    systems per batch (m)
//   --size=1024      equations per system (n)
//   --repeat=5       timed solve repetitions per lane count
//   --threads=1,2,4,0  lane counts to sweep (0 = hardware_concurrency)
//   --layout=system  system | element | auto | sweep
//   --out=BENCH_wall.json
//
// --layout selects the batch layout the solver runs:
//   system   the staged PCR pipeline on the wire layout (the baseline)
//   element  transpose + interleaved SIMD-lane-per-system Thomas
//   auto     whatever the dynamic tuner picks for the workload
//   sweep    three (m, n) regimes × {system, element, auto}, with a
//            GATED summary: auto must beat the system-major pipeline
//            ≥ 1.3x in at least one regime, stay within 15% of the best
//            fixed layout in every regime, and the tuner must pick
//            element-major where it wins and system-major where the
//            transpose cost dominates. CI runs this as the layout gate.
//
// The default workload runs the full stage 1 -> 2 -> 3/4 pipeline in
// float (m=512, n=1024 is ISSUE 5's reference point). Determinism of
// the engine means every lane count produces bitwise-identical
// solutions WITHIN a layout choice; this harness asserts that while it
// measures. (The two layouts run different arithmetic, so solutions
// across layouts agree only to residual tolerance, not bitwise.)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_stats.hpp"
#include "common/buffer_pool.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/thread_pool.hpp"
#include "solver/gpu_solver.hpp"
#include "telemetry/json.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"
#include "tuning/dynamic_tuner.hpp"

namespace {

using namespace tda;
using telemetry::json_number;

struct LaneResult {
  int lanes = 0;
  double systems_per_sec = 0.0;
  double solve_ms = 0.0;  ///< mean wall ms per batched solve
  double host_stage1_ms = 0.0;
  double host_stage2_ms = 0.0;
  double host_stage3_ms = 0.0;
  double host_transpose_ms = 0.0;  ///< element-major layout conversion
  double sim_ms = 0.0;             ///< simulated ms (layout crossover)
  std::uint64_t host_allocs = 0;      ///< counted allocs across timed reps
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  double speedup = 1.0;  ///< vs the 1-lane row
};

std::vector<int> parse_threads(const std::string& spec) {
  std::vector<int> lanes;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    try {
      int v = std::stoi(tok);
      if (v == 0) v = static_cast<int>(std::thread::hardware_concurrency());
      if (v >= 1 && std::find(lanes.begin(), lanes.end(), v) == lanes.end()) {
        lanes.push_back(v);
      }
    } catch (...) {  // skip malformed entries
    }
  }
  if (lanes.empty()) lanes.push_back(1);
  return lanes;
}

/// Tuned switch points for (m, n) — the --layout=auto / sweep choice.
solver::SwitchPoints tuned_points(std::size_t m, std::size_t n) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  dev.set_arena_poison(false);
  tuning::DynamicTuner<float> tuner(dev);
  return tuner.tune({m, n}).points;
}

/// Times `repeat` solves of an (m, n) batch with the given switch points
/// at each lane count, asserting bitwise determinism across lane counts.
std::vector<LaneResult> run_lane_sweep(std::size_t m, std::size_t n,
                                       const solver::SwitchPoints& points,
                                       const std::vector<int>& lane_counts,
                                       int repeat) {
  auto batch = tridiag::make_diag_dominant<float>(m, n, 20260806);
  const auto pristine = batch;

  std::vector<LaneResult> rows;
  std::vector<float> reference_x;
  for (int lanes : lane_counts) {
    gpusim::ThreadPool::global().resize(lanes);
    gpusim::Device dev(gpusim::geforce_gtx_470());
    dev.set_arena_poison(false);  // measure the release-mode fill path
    solver::GpuTridiagonalSolver<float> solver(dev, points);

    // Warm-up: pool slab, lane scratch arenas, page faults.
    solver.solve(batch);

    LaneResult r;
    r.lanes = lanes;
    const auto allocs0 = host_alloc_count();
    const auto pool0 = BufferPool::global().stats();
    WallTimer timer;
    for (int it = 0; it < repeat; ++it) {
      auto stats = solver.solve(batch);
      r.host_stage1_ms += stats.host_stage1_ms;
      r.host_stage2_ms += stats.host_stage2_ms;
      r.host_stage3_ms += stats.host_stage3_ms;
      r.host_transpose_ms += stats.host_transpose_ms;
      r.sim_ms = stats.total_ms;
    }
    const double wall_s = timer.seconds();
    const auto pool1 = BufferPool::global().stats();
    r.host_allocs = host_alloc_count() - allocs0;
    r.pool_hits = pool1.hits - pool0.hits;
    r.pool_misses = pool1.misses - pool0.misses;
    r.solve_ms = wall_s * 1e3 / repeat;
    r.systems_per_sec = static_cast<double>(m) * repeat / wall_s;
    r.host_stage1_ms /= repeat;
    r.host_stage2_ms /= repeat;
    r.host_stage3_ms /= repeat;
    r.host_transpose_ms /= repeat;

    // Engine contract: the solution must not depend on the lane count.
    TDA_ENSURE(tridiag::batch_residual_inf(pristine, batch.x()) < 1e-3f,
               "bench solve produced a bad solution");
    if (reference_x.empty()) {
      reference_x.assign(batch.x().begin(), batch.x().end());
    } else {
      TDA_ENSURE(std::memcmp(reference_x.data(), batch.x().data(),
                             reference_x.size() * sizeof(float)) == 0,
                 "solutions differ across lane counts");
    }
    rows.push_back(r);
  }

  for (auto& r : rows) {
    r.speedup = r.solve_ms > 0.0 ? rows.front().solve_ms / r.solve_ms : 1.0;
  }
  return rows;
}

// ------------------------------------------------------------ sweep mode

struct RegimeResult {
  const char* name;
  std::size_t m = 0, n = 0;
  tridiag::BatchLayout tuner_choice = tridiag::BatchLayout::SystemMajor;
  LaneResult system, element, autop;
};

int run_layout_sweep(int repeat, int lanes, const std::string& out) {
  // Three regimes spanning the layout crossover. many_small is the
  // interleaved kernels' home turf: enough systems for one-thread-per-
  // system to fill the machine, and systems so short that the staged
  // pipeline runs one under-occupied block per system. The other two are
  // the staged pipeline's: fewer/longer systems where the transposes and
  // the half-empty interleaved grid dominate.
  struct Regime {
    const char* name;
    std::size_t m, n;
  };
  const Regime regimes[] = {
      {"many_small", 21504, 64},
      {"reference", 512, 1024},
      {"wide", 2048, 256},
  };

  std::vector<RegimeResult> results;
  for (const Regime& reg : regimes) {
    RegimeResult rr;
    rr.name = reg.name;
    rr.m = reg.m;
    rr.n = reg.n;

    const solver::SwitchPoints auto_points = tuned_points(reg.m, reg.n);
    rr.tuner_choice = auto_points.layout;
    solver::SwitchPoints sys_points;  // defaults are system-major
    solver::SwitchPoints elem_points;
    elem_points.layout = tridiag::BatchLayout::ElementMajor;

    const std::vector<int> lane_counts{lanes};
    rr.system = run_lane_sweep(reg.m, reg.n, sys_points, lane_counts,
                               repeat).front();
    rr.element = run_lane_sweep(reg.m, reg.n, elem_points, lane_counts,
                                repeat).front();
    rr.autop = run_lane_sweep(reg.m, reg.n, auto_points, lane_counts,
                              repeat).front();
    results.push_back(rr);
  }

  std::printf("%-10s %10s %8s  %14s %14s %14s %12s\n", "regime", "m x n",
              "tuner", "system sys/s", "element sys/s", "auto sys/s",
              "transpose%");
  for (const auto& rr : results) {
    const double tshare =
        rr.element.solve_ms > 0.0
            ? 100.0 * rr.element.host_transpose_ms / rr.element.solve_ms
            : 0.0;
    char shape[32];
    std::snprintf(shape, sizeof(shape), "%zux%zu", rr.m, rr.n);
    std::printf("%-10s %10s %8s  %14.0f %14.0f %14.0f %11.1f%%\n", rr.name,
                shape, tridiag::to_string(rr.tuner_choice),
                rr.system.systems_per_sec, rr.element.systems_per_sec,
                rr.autop.systems_per_sec, tshare);
  }

  // ---- gated summary ----
  // Wall-clock gates only where they are robust (the 1.3x headline and
  // confirming an element-major pick); the within-15% regression gate
  // rides the SIMULATED cost, which is deterministic on every host —
  // the tuner optimizes simulated time, so that is the metric on which
  // "auto matches the best fixed layout" must hold exactly.
  bool saw_element = false, saw_system = false;
  double best_gain = 0.0;
  bool auto_within_15 = true;
  bool choices_sound = true;
  for (const auto& rr : results) {
    const double gain =
        rr.system.systems_per_sec > 0.0
            ? rr.autop.systems_per_sec / rr.system.systems_per_sec
            : 0.0;
    best_gain = std::max(best_gain, gain);
    const double best_fixed_sim = std::min(rr.system.sim_ms,
                                           rr.element.sim_ms);
    if (rr.autop.sim_ms > 1.15 * best_fixed_sim) {
      auto_within_15 = false;
      std::printf("GATE: auto is >15%% behind the best fixed layout in %s\n",
                  rr.name);
    }
    if (rr.tuner_choice == tridiag::BatchLayout::ElementMajor) {
      saw_element = true;
      // Where the tuner chose element-major, the interleaved path must
      // actually win wall-clock over the staged pipeline.
      if (rr.element.systems_per_sec <= rr.system.systems_per_sec) {
        choices_sound = false;
        std::printf("GATE: tuner chose element in %s but it loses "
                    "wall-clock\n", rr.name);
      }
    } else {
      saw_system = true;
      // Where the tuner chose system-major, the element path's simulated
      // cost (transposes + the half-empty interleaved grid) must indeed
      // be higher than the tuned pipeline's.
      if (rr.element.sim_ms <= rr.autop.sim_ms) {
        choices_sound = false;
        std::printf("GATE: tuner chose system in %s but element simulates "
                    "faster\n", rr.name);
      }
    }
  }
  std::printf("gated summary: best auto/system gain %.2fx, tuner picked "
              "element in %s, system in %s\n", best_gain,
              saw_element ? "some regime" : "NO regime",
              saw_system ? "some regime" : "NO regime");

  std::ostringstream js;
  js << "{\n";
  js << "  \"bench\": \"bench_wall_layout\",\n";
  js << "  \"repeat\": " << repeat << ",\n";
  js << "  \"threads\": " << lanes << ",\n";
  js << "  \"best_auto_gain\": " << json_number(best_gain) << ",\n";
  js << "  \"regimes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& rr = results[i];
    js << "    {\"regime\": \"" << rr.name << "\", \"systems\": " << rr.m
       << ", \"size\": " << rr.n << ", \"tuner_layout\": \""
       << tridiag::to_string(rr.tuner_choice) << "\",\n"
       << "     \"system_sys_per_sec\": "
       << json_number(rr.system.systems_per_sec)
       << ", \"element_sys_per_sec\": "
       << json_number(rr.element.systems_per_sec)
       << ", \"auto_sys_per_sec\": "
       << json_number(rr.autop.systems_per_sec) << ",\n"
       << "     \"element_transpose_ms\": "
       << json_number(rr.element.host_transpose_ms)
       << ", \"system_sim_ms\": " << json_number(rr.system.sim_ms)
       << ", \"element_sim_ms\": " << json_number(rr.element.sim_ms)
       << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  js << "  ]\n";
  js << "}\n";
  if (!out.empty()) {
    std::ofstream file(out);
    TDA_ENSURE(file.good(), "cannot open output file");
    file << js.str();
  }

  TDA_ENSURE(best_gain >= 1.3,
             "layout gate: auto must beat the system-major pipeline >= "
             "1.3x in at least one regime");
  TDA_ENSURE(auto_within_15,
             "layout gate: auto fell > 15% behind the best fixed layout");
  TDA_ENSURE(saw_element && saw_system,
             "layout gate: sweep must exercise both tuner choices");
  TDA_ENSURE(choices_sound, "layout gate: a tuner layout choice was wrong");
  std::printf("layout gates passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::size_t m = static_cast<std::size_t>(cli.get_int("systems", 512));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("size", 1024));
  const int repeat = static_cast<int>(cli.get_int("repeat", 5));
  const std::string layout = cli.get("layout", "system");
  const std::string out = cli.get(
      "out", layout == "sweep" ? "BENCH_wall_layout.json" : "BENCH_wall.json");
  const std::string threads_spec = cli.get("threads", "1,2,4,0");

  std::vector<int> lane_counts = parse_threads(threads_spec);

  if (layout == "sweep") {
    const int lanes = *std::max_element(lane_counts.begin(),
                                        lane_counts.end());
    return run_layout_sweep(repeat, lanes, out);
  }

  solver::SwitchPoints points;
  if (layout == "element") {
    points.layout = tridiag::BatchLayout::ElementMajor;
  } else if (layout == "auto") {
    points = tuned_points(m, n);
  } else {
    TDA_ENSURE(layout == "system",
               "--layout must be system, element, auto or sweep");
  }

  const std::vector<LaneResult> rows =
      run_lane_sweep(m, n, points, lane_counts, repeat);

  // The row bench_diff.py gates on: the widest sweep entry.
  const LaneResult& best =
      *std::max_element(rows.begin(), rows.end(),
                        [](const LaneResult& a, const LaneResult& b) {
                          return a.lanes < b.lanes;
                        });

  std::ostringstream js;
  js << "{\n";
  js << "  \"bench\": \"bench_wall\",\n";
  js << "  \"workload\": {\"systems\": " << m << ", \"size\": " << n
     << ", \"dtype\": \"float\", \"repeat\": " << repeat << "},\n";
  js << "  \"layout\": \"" << layout << "\",\n";
  js << "  \"solver_layout\": \"" << tridiag::to_string(points.layout)
     << "\",\n";
  js << "  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << ",\n";
  js << "  \"default_threads\": " << best.lanes << ",\n";
  js << "  \"systems_per_sec\": " << json_number(best.systems_per_sec)
     << ",\n";
  js << "  \"solve_ms\": " << json_number(best.solve_ms) << ",\n";
  js << "  \"host_stage1_ms\": " << json_number(best.host_stage1_ms)
     << ",\n";
  js << "  \"host_stage2_ms\": " << json_number(best.host_stage2_ms)
     << ",\n";
  js << "  \"host_stage3_ms\": " << json_number(best.host_stage3_ms)
     << ",\n";
  js << "  \"host_transpose_ms\": " << json_number(best.host_transpose_ms)
     << ",\n";
  js << "  \"host_allocs\": " << best.host_allocs << ",\n";
  js << "  \"pool_hits\": " << best.pool_hits << ",\n";
  js << "  \"pool_misses\": " << best.pool_misses << ",\n";
  js << "  \"thread_scaling\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LaneResult& r = rows[i];
    js << "    {\"threads\": " << r.lanes << ", \"systems_per_sec\": "
       << json_number(r.systems_per_sec) << ", \"solve_ms\": "
       << json_number(r.solve_ms) << ", \"speedup\": "
       << json_number(r.speedup) << ", \"host_allocs\": " << r.host_allocs
       << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  js << "  ]\n";
  js << "}\n";

  std::ofstream file(out);
  TDA_ENSURE(file.good(), "cannot open output file");
  file << js.str();
  file.close();

  std::printf("%-8s %14s %10s %8s %12s\n", "threads", "systems/sec",
              "solve_ms", "speedup", "host_allocs");
  for (const auto& r : rows) {
    std::printf("%-8d %14.0f %10.3f %8.2fx %12llu\n", r.lanes,
                r.systems_per_sec, r.solve_ms, r.speedup,
                static_cast<unsigned long long>(r.host_allocs));
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
