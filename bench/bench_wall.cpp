// Wall-clock throughput benchmark of the block-execution engine
// (docs/PERFORMANCE.md). Unlike the figure harnesses — which report
// SIMULATED GPU milliseconds from the cost model — this bench measures
// real host time: systems solved per wall second, per-stage host
// milliseconds, host allocation counts, and a thread-scaling curve over
// engine lane counts. Its JSON output (BENCH_wall.json) is the perf
// baseline that scripts/bench_diff.py gates CI regressions against.
//
// Flags:
//   --systems=512    systems per batch (m)
//   --size=1024      equations per system (n)
//   --repeat=5       timed solve repetitions per lane count
//   --threads=1,2,4,0  lane counts to sweep (0 = hardware_concurrency)
//   --out=BENCH_wall.json
//
// The workload runs the full stage 1 -> 2 -> 3/4 pipeline in float
// (m=512, n=1024 is ISSUE 5's reference point). Determinism of the
// engine means every lane count produces bitwise-identical solutions;
// this harness asserts that while it measures.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_stats.hpp"
#include "common/buffer_pool.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/thread_pool.hpp"
#include "solver/gpu_solver.hpp"
#include "telemetry/json.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"

namespace {

using namespace tda;
using telemetry::json_number;

struct LaneResult {
  int lanes = 0;
  double systems_per_sec = 0.0;
  double solve_ms = 0.0;  ///< mean wall ms per batched solve
  double host_stage1_ms = 0.0;
  double host_stage2_ms = 0.0;
  double host_stage3_ms = 0.0;
  std::uint64_t host_allocs = 0;      ///< counted allocs across timed reps
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  double speedup = 1.0;  ///< vs the 1-lane row
};

std::vector<int> parse_threads(const std::string& spec) {
  std::vector<int> lanes;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    try {
      int v = std::stoi(tok);
      if (v == 0) v = static_cast<int>(std::thread::hardware_concurrency());
      if (v >= 1 && std::find(lanes.begin(), lanes.end(), v) == lanes.end()) {
        lanes.push_back(v);
      }
    } catch (...) {  // skip malformed entries
    }
  }
  if (lanes.empty()) lanes.push_back(1);
  return lanes;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::size_t m = static_cast<std::size_t>(cli.get_int("systems", 512));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("size", 1024));
  const int repeat = static_cast<int>(cli.get_int("repeat", 5));
  const std::string out = cli.get("out", "BENCH_wall.json");
  const std::string threads_spec = cli.get("threads", "1,2,4,0");

  std::vector<int> lane_counts = parse_threads(threads_spec);

  auto batch = tridiag::make_diag_dominant<float>(m, n, 20260806);
  const auto pristine = batch;

  std::vector<LaneResult> rows;
  std::vector<float> reference_x;
  for (int lanes : lane_counts) {
    gpusim::ThreadPool::global().resize(lanes);
    gpusim::Device dev(gpusim::geforce_gtx_470());
    dev.set_arena_poison(false);  // measure the release-mode fill path
    solver::GpuTridiagonalSolver<float> solver(dev, solver::SwitchPoints{});

    // Warm-up: pool slab, lane scratch arenas, page faults.
    solver.solve(batch);

    LaneResult r;
    r.lanes = lanes;
    const auto allocs0 = host_alloc_count();
    const auto pool0 = BufferPool::global().stats();
    WallTimer timer;
    for (int it = 0; it < repeat; ++it) {
      auto stats = solver.solve(batch);
      r.host_stage1_ms += stats.host_stage1_ms;
      r.host_stage2_ms += stats.host_stage2_ms;
      r.host_stage3_ms += stats.host_stage3_ms;
    }
    const double wall_s = timer.seconds();
    const auto pool1 = BufferPool::global().stats();
    r.host_allocs = host_alloc_count() - allocs0;
    r.pool_hits = pool1.hits - pool0.hits;
    r.pool_misses = pool1.misses - pool0.misses;
    r.solve_ms = wall_s * 1e3 / repeat;
    r.systems_per_sec = static_cast<double>(m) * repeat / wall_s;
    r.host_stage1_ms /= repeat;
    r.host_stage2_ms /= repeat;
    r.host_stage3_ms /= repeat;

    // Engine contract: the solution must not depend on the lane count.
    TDA_ENSURE(tridiag::batch_residual_inf(pristine, batch.x()) < 1e-3f,
               "bench solve produced a bad solution");
    if (reference_x.empty()) {
      reference_x.assign(batch.x().begin(), batch.x().end());
    } else {
      TDA_ENSURE(std::memcmp(reference_x.data(), batch.x().data(),
                             reference_x.size() * sizeof(float)) == 0,
                 "solutions differ across lane counts");
    }
    rows.push_back(r);
  }

  for (auto& r : rows) {
    r.speedup = r.solve_ms > 0.0 ? rows.front().solve_ms / r.solve_ms : 1.0;
  }

  // The row bench_diff.py gates on: the widest sweep entry.
  const LaneResult& best =
      *std::max_element(rows.begin(), rows.end(),
                        [](const LaneResult& a, const LaneResult& b) {
                          return a.lanes < b.lanes;
                        });

  std::ostringstream js;
  js << "{\n";
  js << "  \"bench\": \"bench_wall\",\n";
  js << "  \"workload\": {\"systems\": " << m << ", \"size\": " << n
     << ", \"dtype\": \"float\", \"repeat\": " << repeat << "},\n";
  js << "  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << ",\n";
  js << "  \"default_threads\": " << best.lanes << ",\n";
  js << "  \"systems_per_sec\": " << json_number(best.systems_per_sec)
     << ",\n";
  js << "  \"solve_ms\": " << json_number(best.solve_ms) << ",\n";
  js << "  \"host_stage1_ms\": " << json_number(best.host_stage1_ms)
     << ",\n";
  js << "  \"host_stage2_ms\": " << json_number(best.host_stage2_ms)
     << ",\n";
  js << "  \"host_stage3_ms\": " << json_number(best.host_stage3_ms)
     << ",\n";
  js << "  \"host_allocs\": " << best.host_allocs << ",\n";
  js << "  \"pool_hits\": " << best.pool_hits << ",\n";
  js << "  \"pool_misses\": " << best.pool_misses << ",\n";
  js << "  \"thread_scaling\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LaneResult& r = rows[i];
    js << "    {\"threads\": " << r.lanes << ", \"systems_per_sec\": "
       << json_number(r.systems_per_sec) << ", \"solve_ms\": "
       << json_number(r.solve_ms) << ", \"speedup\": "
       << json_number(r.speedup) << ", \"host_allocs\": " << r.host_allocs
       << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  js << "  ]\n";
  js << "}\n";

  std::ofstream file(out);
  TDA_ENSURE(file.good(), "cannot open output file");
  file << js.str();
  file.close();

  std::printf("%-8s %14s %10s %8s %12s\n", "threads", "systems/sec",
              "solve_ms", "speedup", "host_allocs");
  for (const auto& r : rows) {
    std::printf("%-8d %14.0f %10.3f %8.2fx %12llu\n", r.lanes,
                r.systems_per_sec, r.solve_ms, r.speedup,
                static_cast<unsigned long long>(r.host_allocs));
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
