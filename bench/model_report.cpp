// Cost-model characterization report: the raw curves behind every figure
// — latency hiding vs occupancy, strided inflation vs stride, and the
// measured-by-probe values vs the hidden profile truth. Useful when
// adding a new device profile or re-calibrating (DESIGN.md §6).

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gpusim/memory_model.hpp"
#include "gpusim/probes.hpp"

using namespace tda;

int main() {
  std::cout << "Cost-model characterization\n\n";

  // --- strided inflation curves ---
  {
    TextTable t("reuse-adjusted strided inflation (fp32)");
    std::vector<std::string> header{"device"};
    for (std::size_t s = 1; s <= 256; s *= 2)
      header.push_back("s=" + std::to_string(s));
    t.set_header(header);
    for (const auto& spec : gpusim::device_registry()) {
      std::vector<std::string> row{bench::short_name(spec.name)};
      for (std::size_t s = 1; s <= 256; s *= 2) {
        row.push_back(
            TextTable::num(gpusim::reuse_adjusted_inflation(spec, s, 4), 2));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // --- latency hiding vs resident warps ---
  {
    TextTable t("achieved fraction of peak bandwidth vs blocks launched "
                "(256-thread blocks)");
    std::vector<std::string> header{"device"};
    const std::size_t grid_sizes[] = {1, 4, 14, 30, 60, 120, 480, 4096};
    for (auto g : grid_sizes) header.push_back(std::to_string(g));
    t.set_header(header);
    for (const auto& spec : gpusim::device_registry()) {
      gpusim::Device dev(spec);
      bench::TelemetryScope telemetry_scope(dev, spec.name);
      std::vector<std::string> row{bench::short_name(spec.name)};
      for (auto g : grid_sizes) {
        const double bw = gpusim::probe_bandwidth(dev, g, 256, 1 << 20);
        row.push_back(TextTable::num(bw / spec.global_bw_gb_s, 2));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // --- probes vs hidden truth ---
  {
    TextTable t("micro-benchmark probes vs hidden profile values");
    t.set_header({"device", "probe peak GB/s", "true GB/s",
                  "probe launch us", "true launch us",
                  "probe seg stride", "true seg/elem"});
    for (const auto& spec : gpusim::device_registry()) {
      gpusim::Device dev(spec);
      bench::TelemetryScope telemetry_scope(dev, spec.name);
      auto rep = gpusim::run_probes(dev);
      t.add_row({bench::short_name(spec.name),
                 TextTable::num(rep.peak_bandwidth_gb_s, 1),
                 TextTable::num(spec.global_bw_gb_s, 1),
                 TextTable::num(rep.launch_overhead_us, 1),
                 TextTable::num(spec.launch_overhead_us, 1),
                 std::to_string(rep.inflation_saturation_stride),
                 std::to_string(spec.coalesce_segment_bytes / 4)});
    }
    t.print(std::cout);
  }

  std::cout << "\n(the static tuner can see NONE of the right-hand truth "
               "columns; the probes\n recover them from measurement alone "
               "— the paper's §IV-C/D information asymmetry)\n";
  return 0;
}
