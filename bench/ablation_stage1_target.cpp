// Ablation for §III-C / Figure 4: the stage-1→2 switch point (how many
// independent systems cooperative splitting should create before handing
// over to independent splitting) for a single huge system.
//
// Sweeps the target over the power-of-two ladder and reports per-device
// times, the optimum, and where the default (16) and machine guess
// (#processors) land. The landscape shows the tension the paper
// describes: too little stage 1 starves stage 2 of parallelism; too much
// pays the per-split synchronization penalty.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace tda;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(cli.get_int("n", 1 << 21));  // 2M

  std::cout << "Ablation — stage-1 target sweep for a single system of "
            << n << " equations (fp32, simulated ms)\n\n";

  const std::vector<std::size_t> targets{1,  2,  4,   8,   16,  32,
                                         64, 128, 256, 512, 1024};

  TextTable table;
  std::vector<std::string> header{"device"};
  for (auto t : targets) header.push_back(std::to_string(t));
  header.push_back("best");
  header.push_back("default(16)");
  header.push_back("machine guess");
  table.set_header(header);

  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    bench::TelemetryScope telemetry_scope(dev, spec.name);
    kernels::DeviceBatch<float> scratch(1, n);
    // Group-A parameters from the tuner so only stage 1 varies.
    tuning::DynamicTuner<float> tuner(dev);
    auto tuned = tuner.tune({1, n});

    std::vector<std::string> row{bench::short_name(spec.name)};
    double best = 1e300;
    std::size_t best_t = 0;
    double at_default = 0.0, at_guess = 0.0;
    const std::size_t guess =
        tuning::static_switch_points<float>(dev.query())
            .stage1_target_systems;
    for (auto t : targets) {
      auto sp = tuned.points;
      sp.stage1_target_systems = t;
      const double ms = bench::timed_ms(dev, scratch, sp);
      row.push_back(TextTable::num(ms, 1));
      if (ms < best) {
        best = ms;
        best_t = t;
      }
      if (t == 16) at_default = ms;
      if (t <= guess) at_guess = ms;
    }
    row.push_back(std::to_string(best_t));
    row.push_back(TextTable::num(at_default / best, 2) + "x best");
    row.push_back(TextTable::num(at_guess / best, 2) + "x best");
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
