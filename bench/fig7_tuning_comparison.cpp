// Reproduces paper Figure 7: non-tuned vs statically tuned vs dynamically
// tuned execution time for the four paper workloads on all three GPUs,
// normalized to the non-tuned (default-parameter) time.
//
// Paper observations to reproduce:
//  * static tuning beats default by ~17 % on average (up to 60 %);
//  * dynamic tuning beats default by ~32 % on average, up to 5x,
//    with the largest wins on the largest systems;
//  * default OUTPERFORMS static on 4K×4K (static switches to shared
//    memory too early; default's extra splits buy occupancy).

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"

using namespace tda;

namespace {

struct WorkloadRow {
  const char* label;
  std::size_t m, n;
};

// Paper Fig. 7: untuned execution times (ms) printed above the columns.
const double kPaperUntunedMs[3][4] = {
    {12, 68, 347, 279},     // GeForce 8800
    {3, 16, 101, 225},      // GTX 280
    {1.3, 6.3, 31, 241},    // GTX 470
};

template <typename T>
int run_fig7(const Cli& cli);

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  // --fp64 runs the same comparison in double precision (halved on-chip
  // capacity; the paper's precision discussion, not a paper figure).
  return cli.has("fp64") ? run_fig7<double>(cli) : run_fig7<float>(cli);
}

namespace {

template <typename T>
int run_fig7(const Cli& cli) {
  const bool quick = cli.has("quick");

  const std::vector<WorkloadRow> workloads = {
      {"1Kx1K", 1024, 1024},
      {"2Kx2K", 2048, 2048},
      {"4Kx4K", 4096, 4096},
      {"1x2M", 1, 2 * 1024 * 1024},
  };

  std::cout << "Figure 7 — default vs static vs dynamic tuning, fp"
            << sizeof(T) * 8 << "\n"
            << "(times normalized to the non-tuned run; absolute times are "
               "simulated ms)\n\n";

  TextTable table("tuning comparison");
  table.set_header({"device", "workload", "untuned_ms", "static", "dynamic",
                    "paper_untuned_ms"});

  std::vector<double> static_gains, dynamic_gains;
  double max_dyn_speedup = 0.0;

  int di = 0;
  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    bench::TelemetryScope telemetry_scope(dev, spec.name);
    int wi = 0;
    for (const auto& w : workloads) {
      if (quick && w.n > 2048 && w.m > 1) {
        ++wi;
        continue;
      }
      kernels::DeviceBatch<T> scratch(w.m, w.n);

      const auto def = tuning::default_switch_points<T>();
      const auto sta = tuning::static_switch_points<T>(dev.query());
      tuning::DynamicTuner<T> tuner(dev);
      const auto dyn = tuner.tune({w.m, w.n});

      const double t_def = bench::timed_ms(dev, scratch, def);
      const double t_sta = bench::timed_ms(dev, scratch, sta);
      const double t_dyn = bench::timed_ms(dev, scratch, dyn.points);

      table.add_row({bench::short_name(spec.name), w.label,
                     TextTable::num(t_def, 2), TextTable::num(t_sta / t_def, 3),
                     TextTable::num(t_dyn / t_def, 3),
                     TextTable::num(kPaperUntunedMs[di][wi], 1)});

      static_gains.push_back(1.0 - t_sta / t_def);
      dynamic_gains.push_back(1.0 - t_dyn / t_def);
      max_dyn_speedup = std::max(max_dyn_speedup, t_def / t_dyn);
      ++wi;
    }
    ++di;
  }
  table.print(std::cout);

  std::cout << "\nsummary (paper: static ~17% avg, dynamic ~32% avg, "
               "max 5x)\n";
  std::cout << "  static tuning avg runtime reduction : "
            << TextTable::num(100.0 * mean(static_gains), 1) << " %\n";
  std::cout << "  dynamic tuning avg runtime reduction: "
            << TextTable::num(100.0 * mean(dynamic_gains), 1) << " %\n";
  std::cout << "  max dynamic speedup over untuned    : "
            << TextTable::num(max_dyn_speedup, 2) << " x\n";

  // Functional spot-check: the dynamically tuned solver must still solve.
  {
    gpusim::Device dev(gpusim::geforce_gtx_470());
    bench::TelemetryScope telemetry_scope(dev, "search");
    tuning::DynamicTuner<T> tuner(dev);
    auto dyn = tuner.tune({1024, 1024});
    solver::GpuTridiagonalSolver<T> s(dev, dyn.points);
    auto batch = tridiag::make_diag_dominant<T>(
        1024, 1024, 4242, 2.0, tridiag::BatchStorage::Pooled);
    auto pristine = batch;
    s.solve(batch);
    const double res = tridiag::batch_residual_inf(pristine, batch.x());
    std::cout << "\nvalidation: tuned 1Kx1K solve residual = " << res
              << (res < 1e-3 ? "  [OK]" : "  [FAIL]") << "\n";
    std::cout << "\n";
    bench::report_alloc_gauges(std::cout,
                               &telemetry_scope.telemetry().metrics);
  }

  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}

}  // namespace
