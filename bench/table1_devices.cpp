// Reproduces paper Table I (the GPU devices and their capabilities) and
// Table II (the queryable device properties the machine-query tuner may
// use), plus the derived per-device solver limits.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "kernels/config.hpp"
#include "tuning/tuners.hpp"

using namespace tda;

int main() {
  std::cout << "Table I — GPU devices used in tests and benchmarks\n\n";
  {
    TextTable t;
    t.set_header({"Name", "Global Memory Bandwidth", "Shared Memory Size",
                  "Number of Processors", "Thread Processors per Processor"});
    for (const auto& d : gpusim::device_registry()) {
      t.add_row({d.name, TextTable::num(d.global_bw_gb_s, 1) + " GB/s",
                 std::to_string(d.shared_mem_per_sm / 1024) + " KB",
                 std::to_string(d.sm_count),
                 std::to_string(d.thread_procs_per_sm)});
    }
    t.print(std::cout);
  }

  std::cout << "\nTable II — queryable device properties (all the static "
               "tuner sees)\n\n";
  {
    TextTable t;
    t.set_header({"Query Parameter", "8800 GTX", "GTX 280", "GTX 470"});
    auto devs = gpusim::device_registry();
    auto q0 = devs[0].query();
    auto q1 = devs[1].query();
    auto q2 = devs[2].query();
    auto row = [&](const char* name, auto f) {
      t.add_row({name, f(q0), f(q1), f(q2)});
    };
    using Q = gpusim::DeviceQuery;
    row("Global Mem (MB)", [](const Q& q) {
      return std::to_string(q.global_mem_bytes / (1024 * 1024));
    });
    row("Processors",
        [](const Q& q) { return std::to_string(q.sm_count); });
    row("Constant Memory (KB)", [](const Q& q) {
      return std::to_string(q.constant_mem_bytes / 1024);
    });
    row("Shared Memory (KB)", [](const Q& q) {
      return std::to_string(q.shared_mem_per_sm / 1024);
    });
    row("Register Memory (regs/SM)",
        [](const Q& q) { return std::to_string(q.registers_per_sm); });
    row("Max Threads per Block",
        [](const Q& q) { return std::to_string(q.max_threads_per_block); });
    row("Warp Size",
        [](const Q& q) { return std::to_string(q.warp_size); });
    t.print(std::cout);
  }

  std::cout << "\nDerived solver limits and machine-query switch points\n\n";
  {
    TextTable t;
    t.set_header({"device", "max on-chip n (fp32)", "max on-chip n (fp64)",
                  "static stage3", "static thomas", "static stage1_target"});
    for (const auto& d : gpusim::device_registry()) {
      const auto q = d.query();
      const auto sp = tuning::static_switch_points<float>(q);
      t.add_row({bench::short_name(d.name),
                 std::to_string(kernels::max_shared_system_size(q, 4)),
                 std::to_string(kernels::max_shared_system_size(q, 8)),
                 std::to_string(sp.stage3_system_size),
                 std::to_string(sp.thomas_switch),
                 std::to_string(sp.stage1_target_systems)});
    }
    t.print(std::cout);
    std::cout << "\n(paper §V: largest on-chip systems are 256 / 512 / 1024 "
                 "for the 8800 / 280 / 470, fp32)\n";
  }
  return 0;
}
