// Ablation for §III-A: the PCR-Thomas hybrid base kernel against the
// prior-art shared-memory kernels — pure PCR, cyclic reduction (CR), and
// Zhang et al.'s CR-PCR hybrid — in single and double precision.
//
// Paper claim: "Compared to Zhang et al.'s best (CR-PCR) hybrid
// algorithm, our work has similar performance for single-precision
// systems and better performance for double-precision systems; our
// primary advantage is leveraging the superior work efficiency of the
// Thomas algorithm."

#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "kernels/shared_kernels.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"

using namespace tda;

namespace {

template <typename T>
void run_precision(const char* label, std::size_t m, std::size_t n_req) {
  std::cout << "\n--- " << label << " ---\n";
  TextTable table;
  table.set_header({"device", "n", "pure-PCR", "CR", "CR-PCR",
                    "PCR-Thomas", "hybrid vs CR-PCR"});
  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    bench::TelemetryScope telemetry_scope(dev, spec.name);
    const std::size_t cap =
        kernels::max_shared_system_size(dev.query(), sizeof(T));
    const std::size_t n = std::min(n_req, cap);
    auto host = tridiag::make_diag_dominant<T>(
        m, n, 17, 2.0, tridiag::BatchStorage::Pooled);
    auto pristine = host;

    auto check = [&](const char* who) {
      const double res = tridiag::batch_residual_inf(pristine, host.x());
      TDA_ENSURE(res < (sizeof(T) == 4 ? 1e-3 : 1e-9),
                 std::string("wrong answer from ") + who);
    };

    kernels::DeviceBatch<T> d1(host);
    const double t_pcr = kernels::pure_pcr_kernel(dev, d1).seconds * 1e3;
    d1.download(host);
    check("pure-pcr");

    kernels::DeviceBatch<T> d2(host);
    const double t_cr = kernels::cr_kernel(dev, d2).seconds * 1e3;
    d2.download(host);
    check("cr");

    // Both hybrids run at their best inner switch point, as a tuner
    // would configure them.
    double t_crpcr = 1e300;
    for (std::size_t threshold : {8u, 16u, 32u, 64u}) {
      kernels::DeviceBatch<T> d3(host);
      const double t =
          kernels::cr_pcr_kernel(dev, d3, threshold).seconds * 1e3;
      if (t < t_crpcr) {
        t_crpcr = t;
        d3.download(host);
        check("cr-pcr");
      }
    }

    double t_hybrid = 1e300;
    for (std::size_t sw : {8u, 16u, 32u, 64u, 128u}) {
      kernels::DeviceBatch<T> d4(host);
      kernels::SplitState st;
      const double t = kernels::pcr_thomas_stage(
                           dev, d4, st, sw, kernels::LoadVariant::Strided)
                           .seconds *
                       1e3;
      if (t < t_hybrid) {
        t_hybrid = t;
        d4.download(host);
        check("pcr-thomas");
      }
    }

    table.add_row({bench::short_name(spec.name), std::to_string(n),
                   TextTable::num(t_pcr, 3), TextTable::num(t_cr, 3),
                   TextTable::num(t_crpcr, 3), TextTable::num(t_hybrid, 3),
                   TextTable::num(t_crpcr / t_hybrid, 2) + "x"});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t m = static_cast<std::size_t>(cli.get_int("m", 2048));
  // 256 is the largest size every registry device holds on chip in both
  // precisions, so all kernels compare on identical systems.
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 256));

  std::cout << "Ablation §III-A — base-kernel comparison (" << m
            << " on-chip systems; times are simulated ms)\n";
  run_precision<float>("single precision (fp32)", m, n);
  run_precision<double>("double precision (fp64)", m, n);
  std::cout << "\n";
  bench::report_alloc_gauges(std::cout);
  std::cout << "\npaper claim: hybrid ~= CR-PCR in fp32, better in fp64\n";
  return 0;
}
