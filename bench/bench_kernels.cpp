// Google-benchmark microbenchmarks: real wall-clock throughput of the
// host-side algorithm implementations (the functional core the simulator
// executes) and of the simulator machinery itself. These complement the
// figure harnesses, which report simulated time.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "cpu/batch_solver.hpp"
#include "cpu/gtsv.hpp"
#include "gpusim/launch.hpp"
#include "kernels/device_batch.hpp"
#include "kernels/pcr_thomas_kernel.hpp"
#include "kernels/split_kernels.hpp"
#include "solver/plan.hpp"
#include "tridiag/cr.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/hybrid.hpp"
#include "tridiag/pcr.hpp"
#include "tridiag/thomas.hpp"

namespace {

using namespace tda;
using namespace tda::tridiag;

template <typename T>
SystemView<T> scratch_view(AlignedBuffer<T>& buf, std::size_t n) {
  return SystemView<T>{StridedView<T>(buf.data(), n, 1),
                       StridedView<T>(buf.data() + n, n, 1),
                       StridedView<T>(buf.data() + 2 * n, n, 1),
                       StridedView<T>(buf.data() + 3 * n, n, 1)};
}

void BM_Thomas(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto batch = make_diag_dominant<double>(1, n, 1);
  for (auto _ : state) {
    state.PauseTiming();
    auto work = batch;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        thomas_solve_inplace(work.system(0), work.solution(0)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_Thomas)->Arg(256)->Arg(4096)->Arg(65536);

void BM_PcrSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto batch = make_diag_dominant<double>(1, n, 2);
  AlignedBuffer<double> buf(4 * n);
  for (auto _ : state) {
    state.PauseTiming();
    auto work = batch;
    state.ResumeTiming();
    pcr_solve(work.system(0), scratch_view(buf, n), work.solution(0));
    benchmark::DoNotOptimize(work.x().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_PcrSolve)->Arg(256)->Arg(4096);

void BM_CrSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto batch = make_diag_dominant<double>(1, n, 3);
  for (auto _ : state) {
    state.PauseTiming();
    auto work = batch;
    state.ResumeTiming();
    cr_solve(work.system(0), work.solution(0));
    benchmark::DoNotOptimize(work.x().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_CrSolve)->Arg(256)->Arg(4096);

void BM_PcrThomasHybrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto batch = make_diag_dominant<double>(1, n, 4);
  AlignedBuffer<double> buf(4 * n);
  for (auto _ : state) {
    state.PauseTiming();
    auto work = batch;
    state.ResumeTiming();
    pcr_thomas_solve(work.system(0), scratch_view(buf, n),
                     work.solution(0), 64);
    benchmark::DoNotOptimize(work.x().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_PcrThomasHybrid)->Arg(256)->Arg(4096);

void BM_GtsvPivoting(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto batch = make_random_general<double>(1, n, 5);
  std::vector<double> a(n), b(n), c(n), d(n), x(n);
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(batch.a().begin(), batch.a().end(), a.begin());
    std::copy(batch.b().begin(), batch.b().end(), b.begin());
    std::copy(batch.c().begin(), batch.c().end(), c.begin());
    std::copy(batch.d().begin(), batch.d().end(), d.begin());
    state.ResumeTiming();
    benchmark::DoNotOptimize(cpu::gtsv_solve<double>(a, b, c, d, x));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_GtsvPivoting)->Arg(256)->Arg(4096);

void BM_CpuBatchSolver(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  auto batch = make_diag_dominant<double>(m, 1024, 6);
  cpu::BatchCpuSolver solver(2);
  for (auto _ : state) {
    auto st = solver.solve(batch);
    benchmark::DoNotOptimize(st.failures);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(m) * 1024);
}
BENCHMARK(BM_CpuBatchSolver)->Arg(16)->Arg(256);

void BM_SimulatedSolve(benchmark::State& state) {
  // Wall-clock cost of a fully functional simulated multi-stage solve —
  // what a user pays to run the simulator, not the simulated time itself.
  const auto n = static_cast<std::size_t>(state.range(0));
  gpusim::Device dev(gpusim::geforce_gtx_470());
  auto host = make_diag_dominant<float>(16, n, 7);
  for (auto _ : state) {
    state.PauseTiming();
    kernels::DeviceBatch<float> dbatch(host);
    kernels::SplitState st;
    state.ResumeTiming();
    if (n > 1024) {
      kernels::stage2_split(dev, dbatch, st,
                            solver::splits_needed(n, 1024));
    }
    auto ks = kernels::pcr_thomas_stage(dev, dbatch, st, 128,
                                        kernels::LoadVariant::Strided);
    benchmark::DoNotOptimize(ks.seconds);
  }
  state.SetItemsProcessed(state.iterations() * 16 * static_cast<long>(n));
}
BENCHMARK(BM_SimulatedSolve)->Arg(1024)->Arg(8192);

void BM_CostOnlySolve(benchmark::State& state) {
  // The tuner's evaluation cost: cost-only runs skip the arithmetic.
  const auto n = static_cast<std::size_t>(state.range(0));
  gpusim::Device dev(gpusim::geforce_gtx_470());
  kernels::DeviceBatch<float> dbatch(16, n);
  for (auto _ : state) {
    kernels::SplitState st;
    if (n > 1024) {
      kernels::stage2_split(dev, dbatch, st,
                            solver::splits_needed(n, 1024),
                            kernels::ExecMode::CostOnly);
    }
    auto ks = kernels::pcr_thomas_stage(dev, dbatch, st, 128,
                                        kernels::LoadVariant::Strided,
                                        kernels::ExecMode::CostOnly);
    benchmark::DoNotOptimize(ks.seconds);
  }
  state.SetItemsProcessed(state.iterations() * 16 * static_cast<long>(n));
}
BENCHMARK(BM_CostOnlySolve)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
