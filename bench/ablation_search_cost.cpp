// Ablation for §IV-D: the cost of the decoupled, seeded search against an
// exhaustive sweep of the same parameter space.
//
// Paper argument: "if a parameter P1 had 16 possibilities and P2 has 32,
// and we identify P1 and P2 as independent, then we must test only
// 16+32=48 possibilities instead of 16x32=512", and "a typical
// self-tuning run for a particular system and GPU takes less than one
// minute".

#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

using namespace tda;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t m = static_cast<std::size_t>(cli.get_int("m", 16));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 8192));

  std::cout << "Ablation §IV-D — decoupled+seeded search vs exhaustive "
               "sweep\nworkload: "
            << m << " x " << n << ", fp32\n\n";

  TextTable table;
  table.set_header({"device", "dyn evals", "exh evals", "eval ratio",
                    "dyn best ms", "exh best ms", "quality gap",
                    "dyn wall s", "exh wall s"});

  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    bench::TelemetryScope telemetry_scope(dev, spec.name);
    WallTimer t1;
    tuning::DynamicTuner<float> tuner(dev);
    auto dyn = tuner.tune({m, n});
    const double dyn_wall = t1.seconds();

    WallTimer t2;
    auto exh = tuning::exhaustive_tune<float>(dev, {m, n});
    const double exh_wall = t2.seconds();

    table.add_row(
        {bench::short_name(spec.name), std::to_string(dyn.evaluations),
         std::to_string(exh.evaluations),
         TextTable::num(static_cast<double>(exh.evaluations) /
                            static_cast<double>(dyn.evaluations),
                        1) +
             "x",
         TextTable::num(dyn.best_ms, 4), TextTable::num(exh.best_ms, 4),
         TextTable::num(100.0 * (dyn.best_ms / exh.best_ms - 1.0), 2) + " %",
         TextTable::num(dyn_wall, 2), TextTable::num(exh_wall, 2)});
  }
  table.print(std::cout);
  std::cout << "\n(decoupling makes the search additive in the parameter "
               "ladders; the hill\n descents land within a few percent of "
               "the exhaustive optimum)\n";
  return 0;
}
