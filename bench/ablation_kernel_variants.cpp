// Ablation for §III-A's two base-kernel variants: strided (uncoalesced
// gather, full shared reuse) vs coalesced (windowed streaming with
// boundary leakage), swept over the subsystem stride — "repeat this stage
// increasing the stride count ... until we know how large systems must be
// until the uncoalesced version is preferred".
//
// The crossover stride is device-specific because it depends on the
// (unqueryable) transaction segment size and cache behaviour — the reason
// the self-tuner must measure rather than model it.

// A second sweep covers the interleaved (element-major) kernel family:
// transpose + one-thread-per-system Thomas, with and without a few
// block-local PCR splits in between — the layout dimension the tuner
// weighs against the staged pipeline (src/kernels/interleaved_kernels.hpp).

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "kernels/interleaved_kernels.hpp"
#include "kernels/pcr_thomas_kernel.hpp"
#include "kernels/split_kernels.hpp"

using namespace tda;

namespace {

/// Simulated seconds of the staged system-major path: enough stage-2
/// splits to bring subsystems to <= 256 equations, then the hybrid
/// PCR+Thomas base kernel (strided variant, the tuner default).
double staged_seconds(gpusim::Device& dev, std::size_t m, std::size_t n) {
  std::size_t splits = 0;
  while ((n >> splits) > 256) ++splits;
  kernels::DeviceBatch<float> d(m, n);
  kernels::SplitState st;
  double s = 0.0;
  if (splits > 0) {
    s += kernels::stage2_split(dev, d, st, splits,
                               kernels::ExecMode::CostOnly).seconds;
  }
  s += kernels::pcr_thomas_stage(dev, d, st, 64,
                                 kernels::LoadVariant::Strided,
                                 kernels::ExecMode::CostOnly).seconds;
  return s;
}

/// Simulated seconds of the interleaved path: transpose in, `pcr_steps`
/// element-major PCR splits, the vector Thomas sweep, transpose out.
double interleaved_seconds(gpusim::Device& dev, std::size_t m,
                           std::size_t n, std::size_t pcr_steps) {
  kernels::DeviceBatch<float> d(m, n);
  double s = 0.0;
  s += kernels::transpose_in_stage(dev, d,
                                   kernels::ExecMode::CostOnly).seconds;
  kernels::SplitState st;
  if (pcr_steps > 0) {
    s += kernels::interleaved_pcr_stage(dev, d, st, pcr_steps,
                                        kernels::ExecMode::CostOnly).seconds;
  }
  s += kernels::interleaved_thomas_stage(dev, d, st,
                                         kernels::ExecMode::CostOnly).seconds;
  s += kernels::transpose_out_stage(dev, d,
                                    kernels::ExecMode::CostOnly).seconds;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t m = static_cast<std::size_t>(cli.get_int("m", 64));
  const std::size_t n_sub = static_cast<std::size_t>(cli.get_int("nsub", 256));

  std::cout << "Ablation — strided vs coalesced base-kernel load, stride "
               "sweep (ratio = strided time / coalesced time; >1 means "
               "coalesced wins)\nper-subsystem size "
            << n_sub << ", " << m << " systems, fp32\n\n";

  const std::vector<std::size_t> split_counts{0, 1, 2, 3, 4, 5, 6, 7};

  TextTable table;
  std::vector<std::string> header{"device"};
  for (auto k : split_counts)
    header.push_back("s=" + std::to_string(std::size_t{1} << k));
  header.push_back("crossover");
  table.set_header(header);

  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    bench::TelemetryScope telemetry_scope(dev, spec.name);
    std::vector<std::string> row{bench::short_name(spec.name)};
    std::size_t crossover = 0;
    bool crossed = false;
    for (auto k : split_counts) {
      const std::size_t stride = std::size_t{1} << k;
      const std::size_t n = n_sub * stride;
      double times[2];
      int vi = 0;
      for (auto variant : {kernels::LoadVariant::Strided,
                           kernels::LoadVariant::Coalesced}) {
        kernels::DeviceBatch<float> d(m, n);
        kernels::SplitState st;
        if (k > 0) kernels::stage2_split(dev, d, st, k,
                                         kernels::ExecMode::CostOnly);
        times[vi++] = kernels::pcr_thomas_stage(dev, d, st, 64, variant,
                                                kernels::ExecMode::CostOnly)
                          .seconds;
      }
      const double ratio = times[0] / times[1];
      row.push_back(TextTable::num(ratio, 2));
      if (!crossed && ratio < 1.0 && k > 0) {
        crossover = stride;
        crossed = true;
      }
    }
    row.push_back(crossed ? "s=" + std::to_string(crossover) : ">max");
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(strided preferred from the crossover stride on; the "
               "crossover differs per device)\n";

  std::cout << "\nAblation — staged pipeline vs interleaved (element-major) "
               "variants, simulated ms\n(il-thomas = transpose + vector "
               "Thomas; il-pcr2 adds two element-major PCR splits)\n\n";
  struct Shape {
    const char* label;
    std::size_t m, n;
  };
  const Shape shapes[] = {
      {"21504x64", 21504, 64},
      {"2048x256", 2048, 256},
      {"512x1024", 512, 1024},
  };
  TextTable itable;
  itable.set_header({"device", "shape", "staged", "il-thomas", "il-pcr2",
                     "best"});
  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    for (const auto& sh : shapes) {
      const double staged = staged_seconds(dev, sh.m, sh.n) * 1e3;
      const double il_th = interleaved_seconds(dev, sh.m, sh.n, 0) * 1e3;
      const double il_pcr = interleaved_seconds(dev, sh.m, sh.n, 2) * 1e3;
      const char* best = "staged";
      if (il_th < staged && il_th <= il_pcr) best = "il-thomas";
      if (il_pcr < staged && il_pcr < il_th) best = "il-pcr2";
      itable.add_row({bench::short_name(spec.name), sh.label,
                      TextTable::num(staged, 3), TextTable::num(il_th, 3),
                      TextTable::num(il_pcr, 3), best});
    }
  }
  itable.print(std::cout);
  std::cout << "\n(the interleaved family wins where one thread per system "
               "fills the device; the transposes and the half-empty grid "
               "hand smaller batches back to the staged pipeline)\n";
  return 0;
}
