// Ablation for §III-A's two base-kernel variants: strided (uncoalesced
// gather, full shared reuse) vs coalesced (windowed streaming with
// boundary leakage), swept over the subsystem stride — "repeat this stage
// increasing the stride count ... until we know how large systems must be
// until the uncoalesced version is preferred".
//
// The crossover stride is device-specific because it depends on the
// (unqueryable) transaction segment size and cache behaviour — the reason
// the self-tuner must measure rather than model it.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "kernels/pcr_thomas_kernel.hpp"
#include "kernels/split_kernels.hpp"

using namespace tda;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t m = static_cast<std::size_t>(cli.get_int("m", 64));
  const std::size_t n_sub = static_cast<std::size_t>(cli.get_int("nsub", 256));

  std::cout << "Ablation — strided vs coalesced base-kernel load, stride "
               "sweep (ratio = strided time / coalesced time; >1 means "
               "coalesced wins)\nper-subsystem size "
            << n_sub << ", " << m << " systems, fp32\n\n";

  const std::vector<std::size_t> split_counts{0, 1, 2, 3, 4, 5, 6, 7};

  TextTable table;
  std::vector<std::string> header{"device"};
  for (auto k : split_counts)
    header.push_back("s=" + std::to_string(std::size_t{1} << k));
  header.push_back("crossover");
  table.set_header(header);

  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    bench::TelemetryScope telemetry_scope(dev, spec.name);
    std::vector<std::string> row{bench::short_name(spec.name)};
    std::size_t crossover = 0;
    bool crossed = false;
    for (auto k : split_counts) {
      const std::size_t stride = std::size_t{1} << k;
      const std::size_t n = n_sub * stride;
      double times[2];
      int vi = 0;
      for (auto variant : {kernels::LoadVariant::Strided,
                           kernels::LoadVariant::Coalesced}) {
        kernels::DeviceBatch<float> d(m, n);
        kernels::SplitState st;
        if (k > 0) kernels::stage2_split(dev, d, st, k,
                                         kernels::ExecMode::CostOnly);
        times[vi++] = kernels::pcr_thomas_stage(dev, d, st, 64, variant,
                                                kernels::ExecMode::CostOnly)
                          .seconds;
      }
      const double ratio = times[0] / times[1];
      row.push_back(TextTable::num(ratio, 2));
      if (!crossed && ratio < 1.0 && k > 0) {
        crossover = stride;
        crossed = true;
      }
    }
    row.push_back(crossed ? "s=" + std::to_string(crossover) : ">max");
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(strided preferred from the crossover stride on; the "
               "crossover differs per device)\n";
  return 0;
}
