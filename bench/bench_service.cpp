// Solve-service throughput: shape-bucketed coalescing vs one solve per
// request, swept over offered load (number of client threads).
//
//   ./bench_service [--systems=1024] [--clients=1,2,4,8] [--devices=2]
//                   [--flush=64] [--flush-ms=2] [--csv]
//                   [--metrics=service_metrics.json]
//                   [--faults] [--fault-rates=0,0.01,0.05,0.1]
//                   [--pressure] [--budget-fractions=1,0.5,0.25,0.1]
//                   [--admission=2] [--deadline-ms=0]
//                   [--tenants] [--tenant-requests=150] [--greedy-window=40]
//                   [--window=4] [--isolation-factor=2]
//                   [--isolation-slack-ms=5] [--processes]
//                   [--chaos] [--chaos-requests=100] [--chaos-seed=42]
//                   [--goodput-floor=0.7] [--overload-factor=3]
//                   [--restart] [--restart-requests=800] [--restart-seed=42]
//
// --tenants switches to the multi-tenant isolation proof: real wire
// traffic through a FrontDoor on a unix socket. Phase 1 measures each
// well-behaved tenant's request p95 running ALONE; phase 2 reruns them
// against a greedy tenant pipelining a 10x window and a slow consumer
// that dawdles over its reads. The gate asserts contended p95 <=
// isolation-factor * baseline p95 + slack for every well-behaved
// tenant — weighted-fair DRR lanes are what makes it hold — and the
// bench exits nonzero when it doesn't. Clients survive injected
// net_drop faults by reconnecting and resending what was in flight, so
// the gate also runs under TDA_FAULTS in CI. --processes forks every
// tenant client into its own process (stats come back over a pipe), so
// the contention is between real OS processes rather than threads
// sharing one allocator and scheduler.
//
// --chaos switches to the end-to-end reliability proof
// (docs/ROBUSTNESS.md): clients with idempotent retries talk to the
// front door through a seeded ChaosProxy. Four phases, each gated:
//   1. baseline   proxy transparent — peak goodput, all residuals checked
//   2. chaos      seeded drops / mid-frame resets / latency spikes /
//                 partial writes — every acked Ok must carry a
//                 residual-verified solution, nothing may be lost, and
//                 net.duplicate_executions must stay 0 (exactly-once)
//   3. overload   offered load at --overload-factor x the baseline —
//                 CoDel + AIMD shedding must hold goodput at >=
//                 --goodput-floor of the baseline
//   4. expired    requests arrive with lapsed deadlines — every one is
//                 rejected DeadlineExpired at the door, none reaches
//                 the service
// The bench exits nonzero when any gate fails.
//
// --restart switches to the zero-downtime operations proof
// (docs/OPERATIONS.md): the service runs as a child PROCESS (the hidden
// --restart-server mode of this very binary) wrapped in ops::Server —
// admin socket, periodic crash-safe snapshots, hot-restart handoff.
// Keyed clients with idempotent retries drive it throughout three
// gated phases:
//   1. reload    an admin `reload` changes a tenant quota mid-traffic —
//                the new value must be visible in `stats` and no client
//                may lose a request or even reconnect
//   2. handoff   admin `handoff` forks the next generation and passes
//                the listeners via SCM_RIGHTS; the old generation
//                drains and exits 0. Nothing lost, every ack residual-
//                verified, and the new generation's stats must show
//                net.duplicate_executions == 0 — byte-identical resends
//                of pre-restart work land as replays from the inherited
//                snapshot, not re-executions
//   3. kill9     SIGKILL mid-traffic, then a cold respawn from the
//                periodic snapshot on the same socket path. Same gates:
//                nothing lost, residuals verified, exactly-once holds
//                across the crash boundary
// The bench exits nonzero when any gate fails.
//
// --faults switches to the resilience degradation curve: the coalesced
// configuration is re-run under injected device launch failures at each
// rate (plus mild worker stalls), and the sweep reports completion,
// retry/failover work and the throughput degradation relative to the
// clean run. Every request must still complete at every rate.
//
// --pressure switches to the memory-pressure degradation curve: the
// device budget is set to a fraction of the largest coalesced batch's
// footprint and swept downward, with ShedOldest backpressure plus
// memory-aware admission in front. The sweep reports how completion
// trades against shedding/rejection and how much batch chunking the
// shrinking budget forces. At every fraction every request must still
// terminate with a typed status (the exit code asserts it); ambient
// TDA_FAULTS (e.g. an `oom` rate) deliberately stays in effect so CI
// can combine injected faults with genuine budget pressure.
//
// The workload is many SMALL systems (the regime Gloster et al. show
// benefits most from interleaved batching): shapes drawn from a pool of
// five sizes well under the on-chip limit. Every configuration solves
// the same total number of systems; "coalesced" lets the scheduler
// batch whatever is pending per shape, "per-request" (flush=1 plus a
// synchronous client) dispatches each system alone — the cost of NOT
// having a batching service in front of the solver.
//
// Throughput is reported against simulated device milliseconds (the
// quantity the paper's cost model measures; launch overhead and machine
// fill dominate small-n solves) alongside wall time of the functional
// simulation. --metrics exports the coalesced run's service metrics
// JSON (queue depth, batch occupancy, wait times).
//
// Env hooks (same spirit as the solo benches' TDA_TRACE/TDA_METRICS):
// TDA_TRACE=FILE enables request-scoped tracing and writes the Chrome
// trace of the last run — the file scripts/trace_tree_check.py gates on
// in CI. TDA_OPENMETRICS=FILE writes the last run's registry in
// OpenMetrics text format (scripts/openmetrics_lint.py's input).

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <csignal>
#include <future>
#include <map>
#include <memory>
#include <sys/wait.h>
#include <unistd.h>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "faults/faults.hpp"
#include "gpusim/device.hpp"
#include "kernels/device_batch.hpp"
#include "net/chaos_proxy.hpp"
#include "net/client.hpp"
#include "net/front_door.hpp"
#include "ops/admin.hpp"
#include "ops/server.hpp"
#include "service/solve_service.hpp"

using namespace tda;
using namespace tda::service;

namespace {

constexpr std::size_t kShapes[] = {32, 48, 64, 96, 128};

SolveRequest<double> random_request(std::size_t n, Rng& rng) {
  SolveRequest<double> req;
  req.a.resize(n);
  req.b.resize(n);
  req.c.resize(n);
  req.d.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    req.a[i] = (i == 0) ? 0.0 : rng.uniform(-1, 1);
    req.c[i] = (i == n - 1) ? 0.0 : rng.uniform(-1, 1);
    req.b[i] = (std::abs(req.a[i]) + std::abs(req.c[i])) * 2.0 + 0.5;
    req.d[i] = rng.uniform(-1, 1);
  }
  return req;
}

struct RunResult {
  double wall_s = 0.0;
  double device_ms = 0.0;
  double mean_occupancy = 0.0;
  std::size_t completed = 0;
  double wait_p95_ms = 0.0;
  std::size_t retries = 0;
  std::size_t failovers = 0;
  std::size_t cpu_failovers = 0;
  std::size_t fallbacks = 0;
  std::size_t worker_restarts = 0;
  std::size_t submitted = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t timed_out = 0;
  std::size_t failed = 0;
  std::size_t singular = 0;
  std::size_t nonfinite = 0;
  std::size_t mem_rejected = 0;
  std::size_t timed_out_queue = 0;
  std::size_t timed_out_inflight = 0;
  std::size_t chunked_solves = 0;
  std::size_t chunks = 0;
  std::size_t oom_events = 0;
  std::size_t oom_fallbacks = 0;

  /// Requests that reached some terminal status. Equal to `submitted`
  /// exactly when nothing fell through untyped.
  [[nodiscard]] std::size_t terminated() const {
    return completed + rejected + shed + timed_out + failed + singular +
           nonfinite;
  }
};

/// Resource-pressure knobs of one run; the zero state reproduces the
/// original unconstrained benchmark.
struct PressureKnobs {
  std::size_t mem_budget_bytes = 0;  ///< 0 = device default / env
  double admission_fraction = 0.0;   ///< <=0 disables memory admission
  double deadline_ms = 0.0;          ///< 0 = no default deadline
  bool shed_oldest = false;          ///< ShedOldest instead of Block
  /// Max responses a client leaves unconsumed before it stops submitting
  /// (0 = fire everything at once). Pressure runs need *some* client
  /// flow control, or the instantaneous burst just sheds the tail and
  /// no budget ever sees a steady queue.
  std::size_t window = 0;
};

/// Pushes `systems` requests through a service from `clients` threads.
/// per_request = synchronous clients + flush_systems 1 (no coalescing).
RunResult run(std::size_t systems, int clients, int num_devices,
              std::size_t flush, double flush_ms, bool per_request,
              const std::string& metrics_path,
              const PressureKnobs& knobs = {}) {
  ServiceConfig cfg;
  cfg.flush_systems = per_request ? 1 : flush;
  cfg.flush_interval_ms = flush_ms;
  cfg.queue_capacity = systems + 1;
  cfg.mem_budget_bytes = knobs.mem_budget_bytes;
  cfg.mem_admission_fraction = knobs.admission_fraction;
  cfg.default_deadline_ms = knobs.deadline_ms;
  if (knobs.shed_oldest) cfg.backpressure = BackpressurePolicy::ShedOldest;

  std::vector<gpusim::DeviceSpec> devices;
  const auto registry = gpusim::device_registry();
  for (int i = 0; i < num_devices; ++i)
    devices.push_back(registry[registry.size() - 1 -
                               static_cast<std::size_t>(i) % registry.size()]);

  SolveService<double> svc(devices, cfg);
  svc.telemetry().metrics.enable();
  const char* trace_path = std::getenv("TDA_TRACE");
  if (trace_path != nullptr && *trace_path != '\0')
    svc.telemetry().tracer.enable();

  const std::size_t per_client =
      systems / static_cast<std::size_t>(clients);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(777 + static_cast<std::uint64_t>(t));
      std::vector<std::future<SolveResponse<double>>> futures;
      std::size_t next_wait = 0;
      for (std::size_t i = 0; i < per_client; ++i) {
        auto fut = svc.submit(random_request(
            kShapes[(static_cast<std::size_t>(t) + i) % 5], rng));
        if (per_request) {
          fut.get();  // one in flight at a time: nothing can ride along
        } else {
          futures.push_back(std::move(fut));
          if (knobs.window > 0 && futures.size() - next_wait >= knobs.window)
            futures[next_wait++].get();
        }
      }
      for (; next_wait < futures.size(); ++next_wait)
        futures[next_wait].get();
    });
  }
  for (auto& th : threads) th.join();
  svc.shutdown();

  RunResult r;
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto c = svc.counters();
  r.device_ms = c.device_ms;
  r.completed = c.completed;
  r.mean_occupancy =
      c.flushes > 0 ? static_cast<double>(c.coalesced_systems) /
                          static_cast<double>(c.flushes)
                    : 0.0;
  r.wait_p95_ms = svc.telemetry().metrics.histogram("service.wait_ms").p95;
  r.retries = c.retries;
  r.failovers = c.failovers;
  r.cpu_failovers = c.cpu_failovers;
  r.fallbacks = c.fallbacks;
  r.worker_restarts = c.worker_restarts;
  r.submitted = c.submitted;
  r.rejected = c.rejected;
  r.shed = c.shed;
  r.timed_out = c.timed_out;
  r.failed = c.failed;
  r.singular = c.singular;
  r.nonfinite = c.nonfinite;
  r.mem_rejected = c.mem_rejected;
  r.timed_out_queue = c.timed_out_queue;
  r.timed_out_inflight = c.timed_out_inflight;
  r.chunked_solves = c.chunked_solves;
  r.chunks = c.chunks;
  r.oom_events = c.oom_events;
  r.oom_fallbacks = c.oom_fallbacks;
  if (!metrics_path.empty()) {
    svc.publish_gauges();  // snapshot queue/breaker/lane/pool gauges
    svc.export_metrics(metrics_path);
  }
  // Successive runs overwrite; the files end up describing the last
  // (highest-load) configuration, like --metrics does.
  if (trace_path != nullptr && *trace_path != '\0')
    svc.export_trace(trace_path);
  if (const char* om = std::getenv("TDA_OPENMETRICS");
      om != nullptr && *om != '\0') {
    svc.publish_gauges();
    svc.export_openmetrics(om);
  }
  return r;
}

/// Resilience degradation curve: the coalesced configuration re-run
/// under injected device launch failures (plus a mild worker stall) at
/// each rate. Returns false if any request fails to complete.
bool run_faults_sweep(std::size_t systems, int clients, int num_devices,
                      std::size_t flush, double flush_ms,
                      const std::vector<double>& rates,
                      const std::string& metrics_path, bool csv) {
  std::cout << "Solve service — degradation under injected device faults\n"
            << "workload: " << systems << " small systems, " << clients
            << " client(s), " << num_devices << " device(s)\n\n";

  TextTable table("throughput vs injected launch-failure rate");
  table.set_header({"fault_rate", "completed", "retries", "failovers",
                    "cpu_failovers", "fallbacks", "device_ms",
                    "ksys_per_dev_s", "rel_throughput"});

  bool all_completed = true;
  double clean_throughput = 0.0;
  for (const double rate : rates) {
    faults::FaultConfig fc;
    fc.seed = 42;
    fc.rate_of(faults::Site::DeviceLaunch) = rate;
    if (rate > 0.0) {
      fc.rate_of(faults::Site::WorkerStall) = rate / 2.0;
      fc.stall_ms = 0.5;
    }
    faults::ScopedFaultConfig scoped(fc);

    // Export the metrics JSON of the highest-rate run: the interesting
    // one for the counters (service.retries, service.faults.device, …).
    const bool last = rate == rates.back();
    const auto r = run(systems, clients, num_devices, flush, flush_ms,
                       /*per_request=*/false,
                       last ? metrics_path : std::string());
    all_completed = all_completed && r.completed == systems;
    const double throughput =
        r.device_ms > 0.0 ? static_cast<double>(r.completed) / r.device_ms
                          : 0.0;
    if (rate == 0.0) clean_throughput = throughput;
    const double rel =
        clean_throughput > 0.0 ? throughput / clean_throughput : 0.0;
    table.add_row({TextTable::num(rate, 3),
                   TextTable::num(static_cast<long long>(r.completed)),
                   TextTable::num(static_cast<long long>(r.retries)),
                   TextTable::num(static_cast<long long>(r.failovers)),
                   TextTable::num(static_cast<long long>(r.cpu_failovers)),
                   TextTable::num(static_cast<long long>(r.fallbacks)),
                   TextTable::num(r.device_ms, 2),
                   TextTable::num(throughput, 2), TextTable::num(rel, 3)});
  }
  table.print(std::cout);
  if (csv) {
    std::cout << "\n";
    table.print_csv(std::cout);
  }
  if (!metrics_path.empty())
    std::cout << "\nmetrics JSON of the highest-rate run written to "
              << metrics_path << "\n";
  std::cout << "\nevery request completed at every fault rate: "
            << (all_completed ? "yes  [OK]" : "NO  [FAIL]") << "\n";
  return all_completed;
}

/// Derives a per-fraction metrics filename: "svc.json" at 25% becomes
/// "svc_f25.json".
std::string metrics_path_for(const std::string& base, double fraction) {
  if (base.empty()) return base;
  std::ostringstream suffix;
  suffix << "_f" << static_cast<int>(std::lround(fraction * 100.0));
  const std::size_t dot = base.rfind('.');
  if (dot == std::string::npos) return base + suffix.str();
  return base.substr(0, dot) + suffix.str() + base.substr(dot);
}

/// Memory-pressure degradation curve: the budget of every device is a
/// fraction of the largest coalesced batch's footprint, so below 1.0
/// every full flush must be chunked. Returns false if any request ends
/// without a typed terminal status.
bool run_pressure_sweep(std::size_t systems, int clients, int num_devices,
                        std::size_t flush, double flush_ms,
                        const std::vector<double>& fractions,
                        double admission, double deadline_ms,
                        const std::string& metrics_path, bool csv) {
  const std::size_t largest_n = kShapes[std::size(kShapes) - 1];
  const std::size_t base_budget =
      kernels::DeviceBatch<double>::footprint_bytes(flush, largest_n);
  std::cout << "Solve service — degradation under shrinking memory budgets\n"
            << "workload: " << systems << " small systems, " << clients
            << " client(s), " << num_devices << " device(s); 100% budget = "
            << base_budget << " B (one full flush of " << flush << " x n="
            << largest_n << "), admission fraction " << admission
            << ", deadline "
            << (deadline_ms > 0.0 ? std::to_string(deadline_ms) + " ms"
                                  : std::string("off"))
            << "\n\n";

  TextTable table("graceful degradation vs device memory budget");
  table.set_header({"budget", "completed", "shed", "mem_rej", "timeout_q",
                    "timeout_if", "oom", "chunks", "split_batches", "cpu_fb",
                    "device_ms", "ksys_per_dev_s", "rel"});

  bool all_typed = true;
  double clean_throughput = 0.0;
  for (const double fraction : fractions) {
    PressureKnobs knobs;
    knobs.mem_budget_bytes = std::max<std::size_t>(
        1, static_cast<std::size_t>(fraction * base_budget));
    knobs.admission_fraction = admission;
    knobs.deadline_ms = deadline_ms;
    knobs.shed_oldest = true;
    knobs.window = 8;
    const auto r =
        run(systems, clients, num_devices, flush, flush_ms,
            /*per_request=*/false, metrics_path_for(metrics_path, fraction),
            knobs);
    if (r.terminated() != r.submitted) {
      all_typed = false;
      std::cout << "[FAIL] budget " << fraction << ": " << r.submitted
                << " submitted but only " << r.terminated()
                << " reached a terminal status\n";
    }
    const double throughput =
        r.device_ms > 0.0 ? static_cast<double>(r.completed) / r.device_ms
                          : 0.0;
    if (clean_throughput == 0.0) clean_throughput = throughput;
    const double rel =
        clean_throughput > 0.0 ? throughput / clean_throughput : 0.0;
    table.add_row(
        {TextTable::num(fraction, 2),
         TextTable::num(static_cast<long long>(r.completed)),
         TextTable::num(static_cast<long long>(r.shed)),
         TextTable::num(static_cast<long long>(r.mem_rejected)),
         TextTable::num(static_cast<long long>(r.timed_out_queue)),
         TextTable::num(static_cast<long long>(r.timed_out_inflight)),
         TextTable::num(static_cast<long long>(r.oom_events)),
         TextTable::num(static_cast<long long>(r.chunks)),
         TextTable::num(static_cast<long long>(r.chunked_solves)),
         TextTable::num(static_cast<long long>(r.oom_fallbacks)),
         TextTable::num(r.device_ms, 2), TextTable::num(throughput, 2),
         TextTable::num(rel, 3)});
  }
  table.print(std::cout);
  if (csv) {
    std::cout << "\n";
    table.print_csv(std::cout);
  }
  if (!metrics_path.empty())
    std::cout << "\nper-fraction metrics JSON written next to "
              << metrics_path << "\n";
  std::cout << "\nevery request terminated with a typed status: "
            << (all_typed ? "yes  [OK]" : "NO  [FAIL]") << "\n";
  return all_typed;
}

// ---------------------------------------------------------------- tenants

/// One tenant's traffic profile in the isolation bench.
struct TenantProfile {
  std::string name;
  std::string token;
  std::size_t window = 4;      ///< max requests in flight
  double recv_sleep_ms = 0.0;  ///< dawdle per received response
  bool gated = true;           ///< participates in the isolation gate
};

struct TenantStats {
  std::vector<double> latency_ms;  ///< per completed request, end to end
  std::size_t ok = 0;
  std::size_t rejected = 0;   ///< typed server rejects
  std::size_t lost = 0;       ///< gave up after transport failures
  std::size_t reconnects = 0;

  [[nodiscard]] double p95() const {
    if (latency_ms.empty()) return 0.0;
    std::vector<double> s = latency_ms;
    std::sort(s.begin(), s.end());
    return s[std::min(s.size() - 1,
                      static_cast<std::size_t>(0.95 * double(s.size())))];
  }
};

/// Closed-loop client: keeps `window` requests in flight until
/// `requests` complete. Survives connection drops (injected net_drop
/// faults or otherwise) by reconnecting and resending whatever was in
/// flight — a dropped request is re-solved, never silently lost.
TenantStats run_tenant_client(const std::string& sock,
                              const TenantProfile& prof,
                              std::size_t requests, std::uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  TenantStats st;
  net::Client client;
  std::string err;
  const auto connect = [&] {
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (client.connect(sock, prof.token, &err)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  };
  if (!connect()) {
    st.lost = requests;
    return st;
  }

  Rng rng(seed);
  struct InFlight {
    SolveRequest<double> sys;
    Clock::time_point sent;
  };
  std::map<std::uint64_t, InFlight> outstanding;
  std::uint64_t next_id = 0;
  std::size_t launched = 0;

  const auto send_one = [&](std::uint64_t id, const SolveRequest<double>& s) {
    return client.send_solve<double>(id, s.a, s.b, s.c, s.d, 0.0, &err);
  };
  const auto recover = [&] {
    ++st.reconnects;
    if (!connect()) return false;
    for (const auto& [id, rec] : outstanding) {
      if (!send_one(id, rec.sys)) return false;  // next recv retries
    }
    return true;
  };

  while (launched < requests || !outstanding.empty()) {
    bool transport_ok = true;
    while (launched < requests && outstanding.size() < prof.window) {
      const std::uint64_t id = ++next_id;
      InFlight rec;
      rec.sys = random_request(kShapes[(seed + launched) % 5], rng);
      rec.sent = Clock::now();
      const bool sent_ok = send_one(id, rec.sys);
      outstanding.emplace(id, std::move(rec));
      ++launched;
      if (!sent_ok) {
        transport_ok = false;
        break;
      }
    }
    if (transport_ok && !outstanding.empty()) {
      net::WireResult<double> r;
      if (client.recv_result<double>(r, &err)) {
        if (prof.recv_sleep_ms > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
              prof.recv_sleep_ms));
        }
        const auto it = outstanding.find(r.request_id);
        if (it != outstanding.end()) {
          st.latency_ms.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        it->second.sent)
                  .count());
          (r.ok() ? st.ok : st.rejected) += 1;
          outstanding.erase(it);
        }
      } else {
        transport_ok = false;
      }
    }
    if (!transport_ok && !recover()) {
      st.lost += outstanding.size() + (requests - launched);
      break;
    }
  }
  client.close();
  return st;
}

// ------------------------------------------------------- process clients

/// Full-write loop over a pipe fd (socket.hpp's write_all uses send(),
/// which pipes refuse).
bool pipe_write(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool pipe_read(int fd, void* buf, std::size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

struct TenantProc {
  pid_t pid = -1;
  int rd = -1;
};

/// Forks one tenant client into its own process — OS-level isolation
/// (own address space and scheduler entity) instead of a thread. The
/// child serializes its TenantStats down a pipe (five u64s, then the
/// raw latency doubles) and _exits without touching parent state.
TenantProc spawn_tenant_client(const std::string& sock,
                               const TenantProfile& prof,
                               std::size_t requests, std::uint64_t seed) {
  TenantProc proc;
  int fds[2];
  if (::pipe(fds) != 0) return proc;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return proc;
  }
  if (pid == 0) {
    ::close(fds[0]);
    const TenantStats st = run_tenant_client(sock, prof, requests, seed);
    const std::uint64_t head[5] = {
        st.ok, st.rejected, st.lost,
        static_cast<std::uint64_t>(st.reconnects), st.latency_ms.size()};
    bool ok = pipe_write(fds[1], head, sizeof(head));
    if (ok && !st.latency_ms.empty()) {
      ok = pipe_write(fds[1], st.latency_ms.data(),
                      st.latency_ms.size() * sizeof(double));
    }
    ::close(fds[1]);
    ::_exit(ok ? 0 : 1);
  }
  ::close(fds[1]);
  proc.pid = pid;
  proc.rd = fds[0];
  return proc;
}

/// Blocks until the child finishes and reads its stats back. A child
/// that died mid-run (short pipe read) reports every request lost, so
/// the gate fails loudly instead of silently shrinking the sample.
TenantStats collect_tenant_client(TenantProc& proc, std::size_t requests) {
  TenantStats st;
  if (proc.pid < 0) {
    st.lost = requests;
    return st;
  }
  std::uint64_t head[5] = {0, 0, 0, 0, 0};
  bool ok = pipe_read(proc.rd, head, sizeof(head));
  if (ok) {
    st.ok = head[0];
    st.rejected = head[1];
    st.lost = head[2];
    st.reconnects = head[3];
    st.latency_ms.resize(head[4]);
    if (head[4] > 0) {
      ok = pipe_read(proc.rd, st.latency_ms.data(),
                     head[4] * sizeof(double));
    }
  }
  ::close(proc.rd);
  int wstatus = 0;
  (void)::waitpid(proc.pid, &wstatus, 0);
  if (!ok) {
    st = TenantStats{};
    st.lost = requests;
  }
  return st;
}

TenantStats run_tenant_client_proc(const std::string& sock,
                                   const TenantProfile& prof,
                                   std::size_t requests,
                                   std::uint64_t seed) {
  TenantProc proc = spawn_tenant_client(sock, prof, requests, seed);
  return collect_tenant_client(proc, requests);
}

/// Multi-tenant isolation proof over the wire front door. Returns false
/// when any well-behaved tenant's contended p95 blows past the gate.
/// `processes` forks the clients instead of threading them.
bool run_tenants_bench(int num_devices, std::size_t flush, double flush_ms,
                       std::size_t requests, std::size_t window,
                       std::size_t greedy_window, double factor,
                       double slack_ms, bool processes,
                       const std::string& metrics_path, bool csv) {
  ServiceConfig cfg;
  cfg.flush_systems = flush;
  cfg.flush_interval_ms = flush_ms;
  cfg.queue_capacity = 1 << 14;
  std::vector<gpusim::DeviceSpec> devices;
  const auto registry = gpusim::device_registry();
  for (int i = 0; i < num_devices; ++i)
    devices.push_back(registry[registry.size() - 1 -
                               static_cast<std::size_t>(i) % registry.size()]);
  SolveService<double> svc(devices, cfg);
  svc.telemetry().metrics.enable();
  const char* trace_path = std::getenv("TDA_TRACE");
  if (trace_path != nullptr && *trace_path != '\0')
    svc.telemetry().tracer.enable();

  const std::string sock = "/tmp/tda_bench_tenants_" +
                           std::to_string(::getpid()) + ".sock";
  net::FrontDoorConfig fcfg;
  fcfg.unix_path = sock;
  fcfg.poll_interval_ms = 1.0;
  // Keep the service window tight so the DRR lanes — where fairness is
  // decided — stay the queueing point under contention.
  fcfg.max_service_inflight = 4 * flush;
  net::FrontDoor<double> door(svc, fcfg);

  const std::vector<TenantProfile> profiles = {
      {"fair-a", "tok-fair-a", window, 0.0, true},
      {"fair-b", "tok-fair-b", window, 0.0, true},
      {"greedy", "tok-greedy", greedy_window, 0.0, false},
      {"slow", "tok-slow", window, 1.0, false},
  };
  for (const auto& p : profiles) {
    net::TenantConfig tc;
    tc.name = p.name;
    tc.token = p.token;
    tc.weight = 1.0;  // equal shares: DRR alone must hold the gate
    door.add_tenant(tc);
  }
  std::string err;
  if (!door.start(&err)) {
    std::cout << "[FAIL] front door: " << err << "\n";
    return false;
  }

  const std::string spec = "unix:" + sock;
  std::cout << "Solve service — multi-tenant isolation through the front "
               "door\n"
            << "4 tenants on " << spec << ": 2 fair (window " << window
            << "), 1 greedy (window " << greedy_window
            << "), 1 slow consumer; " << requests
            << " requests each, equal DRR weights, " << num_devices
            << " device(s), clients as "
            << (processes ? "processes" : "threads") << "\n\n";

  // Warm the tuning cache so neither phase pays first-shape tuning.
  (void)run_tenant_client(spec, {"fair-a", "tok-fair-a", 2, 0.0, true},
                          4 * std::size(kShapes), 1);

  // Phase 1: each gated tenant alone — the no-contention baseline.
  std::map<std::string, TenantStats> baseline;
  for (const auto& p : profiles) {
    if (!p.gated) continue;
    baseline[p.name] = processes
                           ? run_tenant_client_proc(spec, p, requests, 11)
                           : run_tenant_client(spec, p, requests, 11);
  }

  // Phase 2: everyone at once.
  std::map<std::string, TenantStats> contended;
  if (processes) {
    // Fork first, collect after: the blocking pipe reads happen while
    // the other children are still running, so contention is preserved.
    std::vector<TenantProc> procs;
    procs.reserve(profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      procs.push_back(
          spawn_tenant_client(spec, profiles[i], requests, 23 + i));
    }
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      contended[profiles[i].name] =
          collect_tenant_client(procs[i], requests);
    }
  } else {
    std::vector<std::thread> threads;
    std::mutex mu;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      threads.emplace_back([&, i] {
        auto stats =
            run_tenant_client(spec, profiles[i], requests, 23 + i);
        std::lock_guard lk(mu);
        contended[profiles[i].name] = std::move(stats);
      });
    }
    for (auto& th : threads) th.join();
  }

  TextTable table("per-tenant p95 latency: alone vs contended");
  table.set_header({"tenant", "ok", "rejected", "lost", "reconnects",
                    "p95_alone_ms", "p95_contended_ms", "ratio", "gate"});
  bool isolated = true;
  for (const auto& p : profiles) {
    const auto& c = contended[p.name];
    std::string alone = "-", ratio = "-", gate = "-";
    if (p.gated) {
      const double base = baseline[p.name].p95();
      const double cont = c.p95();
      const double limit = factor * base + slack_ms;
      const bool pass = cont <= limit;
      isolated = isolated && pass && c.ok > 0;
      alone = TextTable::num(base, 3);
      ratio = TextTable::num(base > 0.0 ? cont / base : 0.0, 2);
      gate = pass ? "pass" : "FAIL";
    }
    table.add_row({p.name, TextTable::num(static_cast<long long>(c.ok)),
                   TextTable::num(static_cast<long long>(c.rejected)),
                   TextTable::num(static_cast<long long>(c.lost)),
                   TextTable::num(static_cast<long long>(c.reconnects)),
                   alone, TextTable::num(c.p95(), 3), ratio, gate});
  }
  table.print(std::cout);
  if (csv) {
    std::cout << "\n";
    table.print_csv(std::cout);
  }

  const auto dc = door.counters();
  std::cout << "\nfront door: " << dc.connections << " conns, "
            << dc.requests_admitted << " admitted, " << dc.requests_rejected
            << " rejected, " << dc.injected_drops << " injected drops, "
            << dc.injected_corruptions << " injected corruptions, "
            << dc.bad_frames << " bad frames\n";
  for (const auto& u : door.tenants().usage()) {
    std::cout << "  " << u.name << ": admitted " << u.admitted
              << ", rejected " << u.rejected << "\n";
  }

  door.shutdown();
  svc.shutdown();
  if (!metrics_path.empty()) {
    svc.publish_gauges();
    svc.export_metrics(metrics_path);
  }
  if (trace_path != nullptr && *trace_path != '\0')
    svc.export_trace(trace_path);
  if (const char* om = std::getenv("TDA_OPENMETRICS");
      om != nullptr && *om != '\0') {
    svc.publish_gauges();
    svc.export_openmetrics(om);
  }

  std::cout << "\nwell-behaved tenants held p95 within " << factor
            << "x + " << slack_ms << " ms of their no-contention baseline: "
            << (isolated ? "yes  [OK]" : "NO  [FAIL]") << "\n";
  return isolated;
}

// ----------------------------------------------------------------- chaos

/// Worst relative residual of one acked solution: max_i |(Ax - d)_i| /
/// (|d_i| + 1). The client-side half of the exactly-once gate — an ack
/// only counts if it carries a genuine solution of the system the
/// client actually sent.
double residual_inf(const SolveRequest<double>& s,
                    const std::vector<double>& x) {
  if (x.size() != s.d.size()) return 1e300;
  const std::size_t n = x.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double r = s.b[i] * x[i] - s.d[i];
    if (i > 0) r += s.a[i] * x[i - 1];
    if (i + 1 < n) r += s.c[i] * x[i + 1];
    const double rel = std::abs(r) / (std::abs(s.d[i]) + 1.0);
    worst = std::max(worst, rel);
  }
  return worst;
}

struct ChaosStats {
  std::size_t ok = 0;            ///< acked with a verified solution
  std::size_t shed = 0;          ///< typed Shed/TimedOut (overload works)
  std::size_t expired = 0;       ///< typed DeadlineExpired
  std::size_t errors = 0;        ///< other typed verdicts left unretried
  std::size_t lost = 0;          ///< no terminal verdict (gate: 0)
  std::size_t retried = 0;       ///< error verdicts resent, same idem key
  std::size_t residual_bad = 0;  ///< acks that failed the residual check
  std::uint64_t reconnects = 0;
  std::uint64_t resends = 0;
  double wall_s = 0.0;
};

/// Closed-loop reliability client: keeps `window` keyed v2 requests in
/// flight. Transport failures are absorbed by the net::Client's own
/// reconnect + resend machinery; typed retryable verdicts (Shed,
/// TimedOut, Internal — e.g. "original request aborted with its
/// connection") are resent under the SAME idempotency key, which is
/// legitimate re-execution: the server abandoned the key with the
/// verdict. DeadlineExpired is always terminal.
ChaosStats run_chaos_client(const std::string& spec, std::size_t requests,
                            std::size_t window, std::uint64_t seed,
                            double deadline_ms, bool retry_errors) {
  ChaosStats st;
  net::Client client;
  net::RetryPolicy rp;
  rp.max_attempts = 60;
  rp.base_backoff_ms = 0.5;
  rp.max_backoff_ms = 20.0;
  rp.seed = seed;
  client.set_retry(rp);
  std::string err;
  bool connected = false;
  for (int attempt = 0; attempt < 200 && !connected; ++attempt) {
    connected = client.connect(spec, "tok-chaos", &err);
    if (!connected)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (!connected) {
    st.lost = requests;
    return st;
  }

  struct Pending {
    SolveRequest<double> sys;
    std::uint64_t key = 0;
    int attempts = 0;
  };
  Rng rng(seed);
  std::map<std::uint64_t, Pending> live;
  std::uint64_t next_id = 0;
  std::size_t launched = 0;
  const auto t0 = std::chrono::steady_clock::now();
  const auto send = [&](std::uint64_t rid, const Pending& p) {
    return client.send_solve2<double>(rid, p.sys.a, p.sys.b, p.sys.c,
                                      p.sys.d, deadline_ms, p.key, &err);
  };

  bool dead = false;
  while (!dead && (launched < requests || !live.empty())) {
    while (launched < requests && live.size() < window) {
      const std::uint64_t rid = ++next_id;
      Pending p;
      p.sys = random_request(kShapes[(seed + launched) % 5], rng);
      p.key = client.mint_key();
      ++launched;
      const bool sent = send(rid, p);
      live.emplace(rid, std::move(p));
      if (!sent) {
        dead = true;
        break;
      }
    }
    if (dead || live.empty()) break;
    net::WireResult<double> r;
    if (!client.recv_result<double>(r, &err)) {
      dead = true;
      break;
    }
    const auto it = live.find(r.request_id);
    if (it == live.end()) continue;  // answer for an already-settled id
    if (r.ok()) {
      if (residual_inf(it->second.sys, r.x) > 1e-6) ++st.residual_bad;
      ++st.ok;
      live.erase(it);
      continue;
    }
    if (r.code == net::ErrorCode::DeadlineExpired) {
      ++st.expired;
      live.erase(it);
      continue;
    }
    if (retry_errors && it->second.attempts < 50) {
      ++it->second.attempts;
      ++st.retried;
      // Draining means a new generation is (or will shortly be)
      // accepting on the same listener: give the old one a beat to
      // close this connection so the resend reconnects there instead
      // of hammering the drain rejection.
      if (r.code == net::ErrorCode::Draining) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (!send(r.request_id, it->second)) dead = true;
      continue;
    }
    if (r.code == net::ErrorCode::Shed ||
        r.code == net::ErrorCode::TimedOut) {
      ++st.shed;
    } else {
      ++st.errors;
    }
    live.erase(it);
  }
  st.lost += live.size() + (requests - launched);
  st.wall_s = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  st.reconnects = client.stats().reconnects;
  st.resends = client.stats().resends;
  client.close();
  return st;
}

struct ChaosPhase {
  ChaosStats total;      ///< summed over clients; wall_s = slowest
  double goodput = 0.0;  ///< verified acks per wall second
};

ChaosPhase run_chaos_phase(const std::string& spec, int clients,
                           std::size_t requests, std::size_t window,
                           std::uint64_t seed, double deadline_ms,
                           bool retry_errors) {
  std::vector<ChaosStats> stats(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    threads.emplace_back([&, i] {
      stats[i] = run_chaos_client(spec, requests, window,
                                  seed + 101 * (i + 1), deadline_ms,
                                  retry_errors);
    });
  }
  for (auto& th : threads) th.join();
  ChaosPhase r;
  for (const auto& s : stats) {
    r.total.ok += s.ok;
    r.total.shed += s.shed;
    r.total.expired += s.expired;
    r.total.errors += s.errors;
    r.total.lost += s.lost;
    r.total.retried += s.retried;
    r.total.residual_bad += s.residual_bad;
    r.total.reconnects += s.reconnects;
    r.total.resends += s.resends;
    r.total.wall_s = std::max(r.total.wall_s, s.wall_s);
  }
  r.goodput = r.total.wall_s > 0.0
                  ? static_cast<double>(r.total.ok) / r.total.wall_s
                  : 0.0;
  return r;
}

/// End-to-end reliability proof (see the file header). Returns false
/// when any of the four gates fails.
bool run_chaos_bench(int num_devices, std::size_t flush, double flush_ms,
                     std::size_t requests, std::uint64_t seed,
                     double goodput_floor, int overload_factor,
                     const std::string& metrics_path, bool csv) {
  ServiceConfig cfg;
  cfg.flush_systems = flush;
  cfg.flush_interval_ms = flush_ms;
  cfg.queue_capacity = 1 << 14;
  std::vector<gpusim::DeviceSpec> devices;
  const auto registry = gpusim::device_registry();
  for (int i = 0; i < num_devices; ++i)
    devices.push_back(registry[registry.size() - 1 -
                               static_cast<std::size_t>(i) % registry.size()]);
  SolveService<double> svc(devices, cfg);
  svc.telemetry().metrics.enable();
  const char* trace_path = std::getenv("TDA_TRACE");
  if (trace_path != nullptr && *trace_path != '\0')
    svc.telemetry().tracer.enable();

  const std::string up =
      "/tmp/tda_chaos_up_" + std::to_string(::getpid()) + ".sock";
  const std::string px =
      "/tmp/tda_chaos_px_" + std::to_string(::getpid()) + ".sock";
  net::FrontDoorConfig fcfg;
  fcfg.unix_path = up;
  fcfg.poll_interval_ms = 1.0;
  fcfg.max_service_inflight = 2 * flush;
  net::FrontDoor<double> door(svc, fcfg);
  net::TenantConfig tc;
  tc.name = "chaos";
  tc.token = "tok-chaos";
  door.add_tenant(tc);
  std::string err;
  if (!door.start(&err)) {
    std::cout << "[FAIL] front door: " << err << "\n";
    return false;
  }

  net::ChaosConfig ccfg;
  ccfg.seed = seed;
  ccfg.drop_rate = 0.06;
  ccfg.reset_rate = 0.03;
  ccfg.latency_rate = 0.08;
  ccfg.latency_ms = 2.0;
  ccfg.partial_rate = 0.15;
  ccfg.partial_delay_ms = 0.2;
  net::ChaosProxy proxy("unix:" + px, "unix:" + up, ccfg);
  proxy.set_enabled(false);
  if (!proxy.start(&err)) {
    std::cout << "[FAIL] chaos proxy: " << err << "\n";
    return false;
  }
  const std::string spec = "unix:" + px;

  std::cout << "Solve service — end-to-end reliability through a chaos "
               "proxy\n"
            << "clients -> " << px << " -> " << up << " -> service; seed "
            << seed << ", " << requests << " requests per client, "
            << num_devices << " device(s)\n\n";

  // Warm the tuning cache so phase walls compare like for like.
  (void)run_chaos_phase(spec, 1, 2 * std::size(kShapes), 2, 1, 0.0, true);

  TextTable table("reliability phases");
  table.set_header({"phase", "ok", "shed", "expired", "errors", "lost",
                    "retried", "reconnects", "resends", "wall_s",
                    "goodput_rps"});
  const auto add_row = [&](const char* name, const ChaosPhase& p) {
    table.add_row({name, TextTable::num(static_cast<long long>(p.total.ok)),
                   TextTable::num(static_cast<long long>(p.total.shed)),
                   TextTable::num(static_cast<long long>(p.total.expired)),
                   TextTable::num(static_cast<long long>(p.total.errors)),
                   TextTable::num(static_cast<long long>(p.total.lost)),
                   TextTable::num(static_cast<long long>(p.total.retried)),
                   TextTable::num(static_cast<long long>(p.total.reconnects)),
                   TextTable::num(static_cast<long long>(p.total.resends)),
                   TextTable::num(p.total.wall_s, 2),
                   TextTable::num(p.goodput, 1)});
  };

  // Phase 1: transparent proxy — peak goodput and a clean bill.
  const auto baseline =
      run_chaos_phase(spec, 3, requests, 8, seed + 1, 0.0, true);
  add_row("baseline", baseline);
  const bool baseline_ok = baseline.total.lost == 0 &&
                           baseline.total.residual_bad == 0 &&
                           baseline.total.ok > 0;

  // Phase 2: chaos on. Acks must verify, nothing may be lost, and the
  // device must never execute one idempotency key twice.
  const auto before_chaos = door.counters();
  proxy.set_enabled(true);
  const auto chaos = run_chaos_phase(spec, 3, requests, 8, seed + 2, 0.0,
                                     /*retry_errors=*/true);
  proxy.set_enabled(false);
  add_row("chaos", chaos);
  const auto after_chaos = door.counters();
  const auto pc = proxy.counters();
  const bool chaos_ok = chaos.total.lost == 0 &&
                        chaos.total.residual_bad == 0 &&
                        after_chaos.duplicate_executions == 0;
  std::cout << "\nchaos injected: " << pc.drops << " drops, " << pc.resets
            << " mid-frame resets, " << pc.latency_injections
            << " latency spikes, " << pc.partial_writes
            << " partial writes\n"
            << "dedup: "
            << (after_chaos.dedup_hits - before_chaos.dedup_hits)
            << " cache replays, "
            << (after_chaos.dedup_joins - before_chaos.dedup_joins)
            << " in-flight joins, duplicate executions "
            << after_chaos.duplicate_executions << "\n\n";

  // Phase 3: offered load at overload_factor x the baseline. CoDel +
  // AIMD shed the excess; goodput must not collapse.
  const auto before_over = door.counters();
  const auto overload = run_chaos_phase(
      spec, 3 * overload_factor, requests,
      8 * static_cast<std::size_t>(overload_factor), seed + 3, 0.0,
      /*retry_errors=*/false);
  add_row("overload", overload);
  const auto after_over = door.counters();
  const bool overload_ok =
      overload.goodput >= goodput_floor * baseline.goodput;
  std::cout << "overload shedding: "
            << (after_over.shed_codel - before_over.shed_codel)
            << " CoDel sheds, "
            << (after_over.aimd_throttles - before_over.aimd_throttles)
            << " AIMD window passes\n\n";

  // Phase 4: already-lapsed deadlines must be rejected at the door —
  // the service submit counter may not move.
  const std::size_t expired_n = 32;
  const auto svc_before = svc.counters().submitted;
  const auto before_exp = door.counters();
  const auto expired = run_chaos_phase(spec, 1, expired_n, 8, seed + 4,
                                       -1000.0, /*retry_errors=*/false);
  add_row("expired", expired);
  const auto after_exp = door.counters();
  const auto svc_after = svc.counters().submitted;
  const bool expired_ok =
      expired.total.expired == expired_n && expired.total.ok == 0 &&
      after_exp.deadline_expired_arrival -
              before_exp.deadline_expired_arrival ==
          expired_n &&
      svc_after == svc_before;

  table.print(std::cout);
  if (csv) {
    std::cout << "\n";
    table.print_csv(std::cout);
  }

  proxy.stop();
  door.shutdown();
  svc.shutdown();
  ::unlink(px.c_str());
  if (!metrics_path.empty()) {
    svc.publish_gauges();
    svc.export_metrics(metrics_path);
  }
  if (trace_path != nullptr && *trace_path != '\0')
    svc.export_trace(trace_path);
  if (const char* om = std::getenv("TDA_OPENMETRICS");
      om != nullptr && *om != '\0') {
    svc.publish_gauges();
    svc.export_openmetrics(om);
  }

  std::cout << "\nbaseline clean (no losses, residuals verified):       "
            << (baseline_ok ? "yes  [OK]" : "NO  [FAIL]") << "\n"
            << "exactly-once under chaos (0 duplicate executions,\n"
            << "  every ack residual-verified, nothing lost):          "
            << (chaos_ok ? "yes  [OK]" : "NO  [FAIL]") << "\n"
            << "goodput at " << overload_factor << "x load >= "
            << goodput_floor << " of baseline ("
            << TextTable::num(overload.goodput, 1) << " vs "
            << TextTable::num(baseline.goodput, 1) << " rps):  "
            << (overload_ok ? "yes  [OK]" : "NO  [FAIL]") << "\n"
            << "expired-on-arrival rejected before the service:        "
            << (expired_ok ? "yes  [OK]" : "NO  [FAIL]") << "\n";
  return baseline_ok && chaos_ok && overload_ok && expired_ok;
}

// --------------------------------------------------------------- restart

/// Per-generation admin socket path: each generation binds its own so
/// the old generation's teardown can never unlink the new one's socket
/// out from under it.
std::string admin_path_for(const std::string& base, std::uint64_t gen) {
  return base + ".g" + std::to_string(gen);
}

/// The hidden --restart-server mode: one service generation under
/// ops::Server. Cold start binds the unix listener itself; a hot-
/// restarted generation (--handoff-fd) receives it over SCM_RIGHTS and
/// loads the snapshot its parent wrote, then acks so the parent drains.
int run_restart_server(const std::string& self, const Cli& cli) {
  const std::string sock = cli.get("sock", "");
  const std::string admin_base = cli.get("admin-base", "");
  const std::string snapshot = cli.get("snapshot", "");
  const int num_devices = static_cast<int>(cli.get_int("devices", 1));
  const std::size_t flush =
      static_cast<std::size_t>(cli.get_int("flush", 64));
  const double flush_ms = cli.get_double("flush-ms", 2.0);
  const auto generation =
      static_cast<std::uint64_t>(cli.get_int("generation", 1));
  const int handoff_fd = static_cast<int>(cli.get_int("handoff-fd", -1));
  if (sock.empty() || admin_base.empty() || snapshot.empty()) {
    std::cerr << "--restart-server needs --sock --admin-base --snapshot\n";
    return 2;
  }

  ServiceConfig cfg;
  cfg.flush_systems = flush;
  cfg.flush_interval_ms = flush_ms;
  cfg.queue_capacity = 1 << 14;
  std::vector<gpusim::DeviceSpec> devices;
  const auto registry = gpusim::device_registry();
  for (int i = 0; i < num_devices; ++i)
    devices.push_back(registry[registry.size() - 1 -
                               static_cast<std::size_t>(i) % registry.size()]);
  SolveService<double> svc(devices, cfg);
  svc.telemetry().metrics.enable();

  net::FrontDoorConfig fcfg;
  fcfg.unix_path = sock;
  fcfg.poll_interval_ms = 1.0;
  fcfg.max_service_inflight = 2 * flush;
  if (handoff_fd >= 0) {
    int tcp_fd = -1, unix_fd = -1;
    if (!ops::receive_handoff(handoff_fd, &tcp_fd, &unix_fd)) {
      std::cerr << "handoff receive failed\n";
      return 2;
    }
    fcfg.inherited_tcp_fd = tcp_fd;
    fcfg.inherited_unix_fd = unix_fd;
  }
  net::FrontDoor<double> door(svc, fcfg);
  net::TenantConfig tc;
  tc.name = "chaos";
  tc.token = "tok-chaos";
  door.add_tenant(tc);

  ops::OpsConfig ocfg;
  ocfg.admin_path = admin_path_for(admin_base, generation);
  ocfg.snapshot_path = snapshot;
  ocfg.snapshot_interval_ms = 25.0;  // a kill -9 loses at most ~25 ms
  ocfg.generation = generation;
  ocfg.handoff_argv = {self,
                       "--restart-server",
                       "--sock=" + sock,
                       "--admin-base=" + admin_base,
                       "--snapshot=" + snapshot,
                       "--devices=" + std::to_string(num_devices),
                       "--flush=" + std::to_string(flush),
                       "--flush-ms=" + std::to_string(flush_ms)};
  ops::Server<double> srv(svc, door, ocfg);
  std::string why;
  if (!srv.load(&why) && generation > 1) {
    // Generation > 1 without a snapshot is a real (but survivable)
    // anomaly worth a line on stderr; generation 1 is just cold.
    std::cerr << "gen " << generation << " cold start: " << why << "\n";
  }
  std::string err;
  if (!door.start(&err)) {
    std::cerr << "front door: " << err << "\n";
    return 2;
  }
  if (!srv.start(&err)) {
    std::cerr << "ops server: " << err << "\n";
    return 2;
  }
  if (handoff_fd >= 0) {
    ops::ack_handoff(handoff_fd);  // parent may drain now
    ::close(handoff_fd);
  }
  while (!srv.should_exit()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  door.shutdown();  // drain: every admitted request answered first
  srv.shutdown();   // final snapshot (skipped after handoff) + flush
  svc.shutdown();
  return 0;
}

pid_t spawn_restart_server(const std::string& self, const std::string& sock,
                           const std::string& admin_base,
                           const std::string& snapshot, int num_devices,
                           std::size_t flush, double flush_ms,
                           std::uint64_t generation) {
  std::vector<std::string> argv = {
      self,
      "--restart-server",
      "--sock=" + sock,
      "--admin-base=" + admin_base,
      "--snapshot=" + snapshot,
      "--devices=" + std::to_string(num_devices),
      "--flush=" + std::to_string(flush),
      "--flush-ms=" + std::to_string(flush_ms),
      "--generation=" + std::to_string(generation)};
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (auto& a : argv) cargv.push_back(a.data());
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }
  return pid;
}

/// Polls the generation's admin socket until `health` answers ok.
bool admin_wait_healthy(const std::string& path, double timeout_s) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string reply, err;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
             .count() < timeout_s) {
    if (ops::admin_request(path, ops::AdminCmd::Health, "", &reply, &err))
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

/// True when `stats` output contains the exact line `key=value`.
bool stats_has(const std::string& stats, const std::string& line) {
  return stats.find(line + "\n") != std::string::npos;
}

/// Waits for a child to exit; false when `timeout_s` lapses (the child
/// is then killed) or it exited nonzero.
bool reap(pid_t pid, double timeout_s) {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (r < 0) return false;
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count() > timeout_s) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

/// Zero-downtime operations proof (see the file header). Returns false
/// when any of the three gates fails.
bool run_restart_bench(const std::string& self, int num_devices,
                       std::size_t flush, double flush_ms,
                       std::size_t requests, std::uint64_t seed,
                       bool csv) {
  const std::string tag = std::to_string(::getpid());
  const std::string sock = "/tmp/tda_restart_" + tag + ".sock";
  const std::string admin_base = "/tmp/tda_restart_adm_" + tag;
  const std::string snapshot = "/tmp/tda_restart_" + tag + ".snap";
  const std::string spec = "unix:" + sock;
  ::unlink(snapshot.c_str());

  std::cout << "Solve service — zero-downtime operations\n"
            << "server generations as child processes on " << spec
            << "; seed " << seed << ", " << requests
            << " requests per client, " << num_devices << " device(s), "
            << "snapshots every 25 ms\n\n";

  std::vector<pid_t> children;
  const auto cleanup = [&] {
    for (const pid_t pid : children) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, WNOHANG);
    }
    ::unlink(sock.c_str());
    ::unlink(snapshot.c_str());
  };

  const pid_t gen1 = spawn_restart_server(self, sock, admin_base, snapshot,
                                          num_devices, flush, flush_ms, 1);
  children.push_back(gen1);
  if (!admin_wait_healthy(admin_path_for(admin_base, 1), 10.0)) {
    std::cout << "[FAIL] generation 1 never became healthy\n";
    cleanup();
    return false;
  }

  // Warm the tuning cache so the phases run at steady-state speed.
  (void)run_chaos_phase(spec, 1, 2 * std::size(kShapes), 2, 1, 0.0, true);

  TextTable table("zero-downtime phases");
  table.set_header({"phase", "ok", "errors", "lost", "retried",
                    "reconnects", "resends", "wall_s"});
  const auto add_row = [&](const char* name, const ChaosPhase& p) {
    table.add_row({name, TextTable::num(static_cast<long long>(p.total.ok)),
                   TextTable::num(static_cast<long long>(p.total.errors)),
                   TextTable::num(static_cast<long long>(p.total.lost)),
                   TextTable::num(static_cast<long long>(p.total.retried)),
                   TextTable::num(static_cast<long long>(p.total.reconnects)),
                   TextTable::num(static_cast<long long>(p.total.resends)),
                   TextTable::num(p.total.wall_s, 2)});
  };
  std::string reply, err;

  // Phase 1: live reload mid-traffic — no dropped connections.
  auto clients = std::async(std::launch::async, [&] {
    return run_chaos_phase(spec, 3, requests, 8, seed + 1, 0.0, true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const bool reload_sent = ops::admin_request(
      admin_path_for(admin_base, 1), ops::AdminCmd::Reload,
      "tenant=chaos\nrequests_per_sec=10000\nmax_inflight=4096\n", &reply,
      &err);
  bool reload_visible = false;
  if (ops::admin_request(admin_path_for(admin_base, 1),
                         ops::AdminCmd::Stats, "", &reply, &err)) {
    reload_visible =
        stats_has(reply, "tenant.chaos.requests_per_sec=10000") &&
        stats_has(reply, "tenant.chaos.max_inflight=4096");
  }
  const auto reload = clients.get();
  add_row("reload", reload);
  const bool reload_ok = reload_sent && reload_visible &&
                         reload.total.lost == 0 &&
                         reload.total.residual_bad == 0 &&
                         reload.total.reconnects == 0 &&
                         reload.total.ok > 0;

  // Phase 2: hot restart. Gen 1 forks gen 2, hands the listener over,
  // drains, exits 0 — all while the clients keep sending. The phase
  // runs 3x the normal request count because the old generation only
  // starts draining once the freshly exec'd child acks, which takes
  // ~500 ms when it competes with the traffic for CPU — the clients
  // must still be mid-stream at that point for the switch to be
  // exercised under load.
  clients = std::async(std::launch::async, [&] {
    return run_chaos_phase(spec, 3, 3 * requests, 8, seed + 2, 0.0, true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  pid_t gen2 = -1;
  const auto t_phase = std::chrono::steady_clock::now();
  bool handoff_sent = ops::admin_request(admin_path_for(admin_base, 1),
                                         ops::AdminCmd::Handoff, "", &reply,
                                         &err);
  const double handoff_reply_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t_phase)
          .count();
  if (handoff_sent && reply.rfind("pid=", 0) == 0) {
    gen2 = static_cast<pid_t>(std::stol(reply.substr(4)));
  } else {
    handoff_sent = false;
    std::cout << "handoff failed: " << (err.empty() ? reply : err) << "\n";
  }
  const bool gen1_exited = handoff_sent && reap(gen1, 30.0);
  const auto handoff = clients.get();
  add_row("handoff", handoff);
  bool gen2_stats_ok = false;
  if (gen2 > 0 && admin_wait_healthy(admin_path_for(admin_base, 2), 10.0) &&
      ops::admin_request(admin_path_for(admin_base, 2), ops::AdminCmd::Stats,
                         "", &reply, &err)) {
    gen2_stats_ok = stats_has(reply, "generation=2") &&
                    stats_has(reply, "loaded_from_snapshot=1") &&
                    stats_has(reply, "net.duplicate_executions=0");
  }
  // reconnects > 0 proves the switch happened under live traffic: the
  // draining generation said Goodbye to clients that still had work,
  // and they carried it to the new generation.
  const bool handoff_ok = handoff_sent && gen1_exited &&
                          handoff.total.lost == 0 &&
                          handoff.total.residual_bad == 0 &&
                          handoff.total.ok > 0 &&
                          handoff.total.reconnects > 0 && gen2_stats_ok;
  std::cout << "handoff subgates: sent=" << handoff_sent
            << " gen1_exited=" << gen1_exited
            << " reconnects=" << handoff.total.reconnects
            << " gen2_stats=" << gen2_stats_ok
            << " reply_ms=" << handoff_reply_ms
            << " wall_s=" << handoff.total.wall_s << "\n";

  // Phase 3: kill -9 mid-traffic, cold respawn from the snapshot. The
  // clients' reconnect + byte-identical resend machinery carries the
  // outage; the snapshot carries exactly-once across it.
  clients = std::async(std::launch::async, [&] {
    return run_chaos_phase(spec, 3, requests, 8, seed + 3, 0.0, true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  if (gen2 > 0) ::kill(gen2, SIGKILL);
  const pid_t gen3 = spawn_restart_server(
      self, sock, admin_base, snapshot, num_devices, flush, flush_ms, 3);
  children.push_back(gen3);
  const bool gen3_up = admin_wait_healthy(admin_path_for(admin_base, 3),
                                          10.0);
  const auto kill9 = clients.get();
  add_row("kill9", kill9);
  bool gen3_stats_ok = false;
  if (gen3_up &&
      ops::admin_request(admin_path_for(admin_base, 3), ops::AdminCmd::Stats,
                         "", &reply, &err)) {
    gen3_stats_ok = stats_has(reply, "generation=3") &&
                    stats_has(reply, "loaded_from_snapshot=1") &&
                    stats_has(reply, "net.duplicate_executions=0");
  }
  const bool kill9_ok = gen3_up && kill9.total.lost == 0 &&
                        kill9.total.residual_bad == 0 &&
                        kill9.total.ok > 0 &&
                        kill9.total.reconnects > 0 && gen3_stats_ok;

  // Orderly end: drain generation 3 and reap it.
  (void)ops::admin_request(admin_path_for(admin_base, 3),
                           ops::AdminCmd::Drain, "", &reply, &err);
  const bool gen3_exited = reap(gen3, 30.0);

  table.print(std::cout);
  if (csv) {
    std::cout << "\n";
    table.print_csv(std::cout);
  }

  std::cout << "\nreload applied mid-traffic, visible in stats,\n"
            << "  nothing lost, zero reconnects:                     "
            << (reload_ok ? "yes  [OK]" : "NO  [FAIL]") << "\n"
            << "hot restart: listener handed off, old generation\n"
            << "  drained and exited 0, nothing lost, exactly-once:  "
            << (handoff_ok ? "yes  [OK]" : "NO  [FAIL]") << "\n"
            << "kill -9 + cold restart from snapshot: nothing lost,\n"
            << "  every ack residual-verified, exactly-once:         "
            << (kill9_ok ? "yes  [OK]" : "NO  [FAIL]") << "\n"
            << "generation 3 drained on request:                     "
            << (gen3_exited ? "yes  [OK]" : "NO  [FAIL]") << "\n";

  cleanup();
  return reload_ok && handoff_ok && kill9_ok && gen3_exited;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);

  // Absolute path of this binary, so a forked generation can exec it
  // regardless of the working directory it inherits.
  std::string self = argv[0];
  {
    char resolved[PATH_MAX];
    if (::realpath(argv[0], resolved) != nullptr) self = resolved;
  }
  if (cli.has("restart-server")) {
    return run_restart_server(self, cli);
  }
  if (cli.has("restart")) {
    return run_restart_bench(
               self, static_cast<int>(cli.get_int("devices", 1)),
               static_cast<std::size_t>(cli.get_int("flush", 64)),
               cli.get_double("flush-ms", 2.0),
               static_cast<std::size_t>(cli.get_int("restart-requests", 800)),
               static_cast<std::uint64_t>(cli.get_int("restart-seed", 42)),
               cli.has("csv"))
               ? 0
               : 1;
  }

  const std::size_t systems =
      static_cast<std::size_t>(cli.get_int("systems", 1024));
  const int num_devices = static_cast<int>(cli.get_int("devices", 2));
  const std::size_t flush =
      static_cast<std::size_t>(cli.get_int("flush", 64));
  const double flush_ms = cli.get_double("flush-ms", 2.0);
  const std::string metrics_path = cli.get("metrics", "");

  std::vector<int> client_counts;
  {
    std::stringstream ss(cli.get("clients", "1,2,4,8"));
    for (std::string tok; std::getline(ss, tok, ',');)
      client_counts.push_back(std::stoi(tok));
  }

  if (cli.has("chaos")) {
    return run_chaos_bench(
               num_devices, flush, flush_ms,
               static_cast<std::size_t>(cli.get_int("chaos-requests", 100)),
               static_cast<std::uint64_t>(cli.get_int("chaos-seed", 42)),
               cli.get_double("goodput-floor", 0.7),
               static_cast<int>(cli.get_int("overload-factor", 3)),
               metrics_path, cli.has("csv"))
               ? 0
               : 1;
  }

  if (cli.has("tenants")) {
    return run_tenants_bench(
               num_devices, flush, flush_ms,
               static_cast<std::size_t>(cli.get_int("tenant-requests", 150)),
               static_cast<std::size_t>(cli.get_int("window", 4)),
               static_cast<std::size_t>(cli.get_int("greedy-window", 40)),
               cli.get_double("isolation-factor", 2.0),
               cli.get_double("isolation-slack-ms", 5.0),
               cli.has("processes"), metrics_path, cli.has("csv"))
               ? 0
               : 1;
  }

  if (cli.has("pressure")) {
    std::vector<double> fractions;
    std::stringstream ss(cli.get("budget-fractions", "1,0.5,0.25,0.1"));
    for (std::string tok; std::getline(ss, tok, ',');)
      fractions.push_back(std::stod(tok));
    const int clients = client_counts.empty() ? 4 : client_counts.back();
    // Admission defaults to 2x the pooled budget: queued bytes may
    // exceed device capacity because chunking stages each batch through
    // the budget; admission only has to bound queue growth.
    return run_pressure_sweep(systems, clients, num_devices, flush, flush_ms,
                              fractions, cli.get_double("admission", 2.0),
                              cli.get_double("deadline-ms", 0.0),
                              metrics_path, cli.has("csv"))
               ? 0
               : 1;
  }

  if (cli.has("faults")) {
    std::vector<double> rates;
    std::stringstream ss(cli.get("fault-rates", "0,0.01,0.05,0.1"));
    for (std::string tok; std::getline(ss, tok, ',');)
      rates.push_back(std::stod(tok));
    const int clients = client_counts.empty() ? 4 : client_counts.back();
    return run_faults_sweep(systems, clients, num_devices, flush, flush_ms,
                            rates, metrics_path, cli.has("csv"))
               ? 0
               : 1;
  }

  std::cout << "Solve service — coalescing gain over one-solve-per-request\n"
            << "workload: " << systems << " small systems (n in 32..128), "
            << num_devices << " device(s), flush at " << flush
            << " systems / " << flush_ms << " ms\n\n";

  TextTable table("throughput vs offered load");
  table.set_header({"clients", "mode", "batch_avg", "wait_p95_ms",
                    "device_ms", "ksys_per_dev_s", "wall_s", "gain"});

  bool coalescing_won = true;
  RunResult last_coal;
  double last_thr = 0.0, last_gain = 0.0;
  int last_clients = 0;
  for (int clients : client_counts) {
    const auto per_req = run(systems, clients, num_devices, flush, flush_ms,
                             /*per_request=*/true, "");
    const auto coal = run(systems, clients, num_devices, flush, flush_ms,
                          /*per_request=*/false, metrics_path);
    const double thr_per_req =
        static_cast<double>(per_req.completed) / per_req.device_ms;
    const double thr_coal =
        static_cast<double>(coal.completed) / coal.device_ms;
    const double gain = thr_coal / thr_per_req;
    coalescing_won = coalescing_won && gain > 1.0 &&
                     coal.completed == systems &&
                     per_req.completed == systems;
    last_coal = coal;
    last_thr = thr_coal;
    last_gain = gain;
    last_clients = clients;
    table.add_row({TextTable::num(static_cast<long long>(clients)),
                   "per-request", TextTable::num(per_req.mean_occupancy, 2),
                   TextTable::num(per_req.wait_p95_ms, 3),
                   TextTable::num(per_req.device_ms, 2),
                   TextTable::num(thr_per_req, 2),
                   TextTable::num(per_req.wall_s, 2), "1.00"});
    table.add_row({TextTable::num(static_cast<long long>(clients)),
                   "coalesced", TextTable::num(coal.mean_occupancy, 2),
                   TextTable::num(coal.wait_p95_ms, 3),
                   TextTable::num(coal.device_ms, 2),
                   TextTable::num(thr_coal, 2),
                   TextTable::num(coal.wall_s, 2),
                   TextTable::num(gain, 2)});
  }
  table.print(std::cout);
  if (cli.has("csv")) {
    std::cout << "\n";
    table.print_csv(std::cout);
  }
  if (!metrics_path.empty())
    std::cout << "\nservice metrics (queue depth, batch occupancy, waits) "
                 "written to "
              << metrics_path << "\n";

  // --summary=FILE: the coalesced run at the highest client count as a
  // flat JSON report — the shape scripts/bench_diff.py appends to the
  // committed bench/history/ trend files.
  if (const std::string summary_path = cli.get("summary", "");
      !summary_path.empty()) {
    std::ofstream out(summary_path);
    out << "{\n"
        << "  \"systems\": " << systems << ",\n"
        << "  \"clients\": " << last_clients << ",\n"
        << "  \"devices\": " << num_devices << ",\n"
        << "  \"ksys_per_dev_s\": " << last_thr << ",\n"
        << "  \"coalescing_gain\": " << last_gain << ",\n"
        << "  \"mean_occupancy\": " << last_coal.mean_occupancy << ",\n"
        << "  \"wait_p95_ms\": " << last_coal.wait_p95_ms << ",\n"
        << "  \"wall_s\": " << last_coal.wall_s << ",\n"
        << "  \"completed\": " << last_coal.completed << "\n"
        << "}\n";
    std::cout << "summary JSON written to " << summary_path << "\n";
  }

  std::cout << "\ncoalescing beats one-solve-per-request: "
            << (coalescing_won ? "yes  [OK]" : "NO  [FAIL]") << "\n";
  return coalescing_won ? 0 : 1;
}
