#!/usr/bin/env python3
"""Lints an OpenMetrics text-format export (what export_openmetrics and
the TDA_METRICS_INTERVAL snapshot writer produce).

    openmetrics_lint.py FILE [--quiet] [--require-label=NAME ...]
                        [--require-labeled-prefix=PREFIX ...]

Checks, against the OpenMetrics 1.0 text format:
  * the exposition ends with exactly one `# EOF` line;
  * metric names are valid and each family has at most one TYPE line,
    declared before its samples, with a known type;
  * every sample line parses (name, optional {labels}, float value,
    optional `# {exemplar} value` exemplar) and belongs to a declared
    family with the suffix its type allows (_total for counters,
    _bucket/_count/_sum for histograms, ...);
  * label sets parse, no duplicate label names, quoting is well-formed;
  * histogram series: every _bucket carries an `le` label, buckets are
    cumulative (non-decreasing in le order), the `+Inf` bucket exists
    and equals that series' _count;
  * exemplars only appear on histogram buckets or counters;
  * each --require-label=NAME (repeatable) demands at least one sample
    carrying that label — CI uses --require-label=tenant to prove the
    per-tenant observability plumbing survives export;
  * each --require-labeled-prefix=PREFIX (repeatable) demands at least
    one family whose name starts with PREFIX AND that every sample of
    every such family carries at least one label — CI uses
    --require-labeled-prefix=tda_ops_ to prove the ops-layer metrics
    exist and all carry their {generation} label.

Exit codes: 0 clean, 1 lint findings (all printed), 2 unreadable input.
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
KNOWN_TYPES = {
    "counter", "gauge", "histogram", "summary", "unknown",
    "stateset", "info", "gaugehistogram",
}
# Sample-name suffixes each family type may expose.
TYPE_SUFFIXES = {
    "counter": {"_total", "_created"},
    "gauge": {""},
    "summary": {"", "_count", "_sum", "_created"},
    "histogram": {"_bucket", "_count", "_sum", "_created"},
    "gaugehistogram": {"_bucket", "_gcount", "_gsum"},
    "unknown": {""},
    "stateset": {""},
    "info": {"_info"},
}


def parse_labels(text, err):
    """'k="v",k2="v2"' -> dict; records findings through err()."""
    labels = {}
    i = 0
    while i < len(text):
        m = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', text[i:])
        if not m:
            err(f"bad label syntax at ...{text[i:]!r}")
            return labels
        key = m.group(1)
        i += m.end()
        val = []
        while i < len(text):
            ch = text[i]
            if ch == "\\":
                if i + 1 >= len(text):
                    err("dangling escape in label value")
                    return labels
                nxt = text[i + 1]
                if nxt not in ('"', "\\", "n"):
                    err(f"invalid escape \\{nxt} in label value")
                val.append({"n": "\n"}.get(nxt, nxt))
                i += 2
                continue
            if ch == '"':
                break
            val.append(ch)
            i += 1
        else:
            err("unterminated label value")
            return labels
        i += 1  # closing quote
        if key in labels:
            err(f'duplicate label name "{key}"')
        labels[key] = "".join(val)
        if i < len(text):
            if text[i] != ",":
                err(f"expected ',' between labels, got {text[i]!r}")
                return labels
            i += 1
    return labels


def parse_value(tok):
    if tok in ("+Inf", "Inf"):
        return math.inf
    if tok == "-Inf":
        return -math.inf
    if tok == "NaN":
        return math.nan
    return float(tok)  # raises ValueError on garbage


SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<ts>\S+))?"
    r"(?P<exemplar> # \{(?P<exlabels>[^}]*)\} (?P<exvalue>\S+)"
    r"(?: (?P<exts>\S+))?)?$"
)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    quiet = "--quiet" in argv
    required_labels = [
        a.split("=", 1)[1] for a in argv[1:]
        if a.startswith("--require-label=") and "=" in a
    ]
    required_prefixes = [
        a.split("=", 1)[1] for a in argv[1:]
        if a.startswith("--require-labeled-prefix=") and "=" in a
    ]
    if len(args) != 1:
        print(__doc__.strip().splitlines()[2].strip())
        return 2
    try:
        with open(args[0], encoding="utf-8") as fh:
            raw = fh.read()
    except OSError as exc:
        print(f"openmetrics_lint: cannot read {args[0]}: {exc}")
        return 2

    findings = []
    types = {}  # family -> declared type
    # (series key) -> list of (le, count) for bucket monotonicity,
    # and scalar _count values for the +Inf == _count check.
    buckets = {}
    counts = {}
    samples = 0
    label_hits = {name: 0 for name in required_labels}
    prefix_families = {p: 0 for p in required_prefixes}
    eof_seen = False

    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # trailing newline

    for ln, line in enumerate(lines, 1):
        def err(msg, ln=ln):
            findings.append(f"line {ln}: {msg}")

        if eof_seen:
            err("content after # EOF")
            break
        if line == "# EOF":
            eof_seen = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                err(f"malformed TYPE line: {line!r}")
                continue
            _, _, family, mtype = parts
            if not NAME_RE.match(family):
                err(f"invalid family name {family!r}")
            if mtype not in KNOWN_TYPES:
                err(f"unknown metric type {mtype!r}")
            if family in types:
                err(f"duplicate TYPE for family {family!r}")
            types[family] = mtype
            for prefix in required_prefixes:
                if family.startswith(prefix):
                    prefix_families[prefix] += 1
            continue
        if line.startswith("#"):
            # HELP/UNIT/comments: tolerated, not checked.
            continue
        if not line.strip():
            err("blank line (not allowed in OpenMetrics)")
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err(f"unparseable sample line: {line!r}")
            continue
        samples += 1
        name = m.group("name")
        labels = parse_labels(m.group("labels") or "", err)
        for want in required_labels:
            if labels.get(want):
                label_hits[want] += 1
        for prefix in required_prefixes:
            if name.startswith(prefix) and not labels:
                err(f"{name!r}: sample under required-labeled prefix "
                    f'"{prefix}" carries no labels')
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            err(f"bad sample value {m.group('value')!r}")
            continue

        # Resolve the family this sample belongs to.
        family, suffix = None, None
        for fam in types:
            if name == fam or (
                name.startswith(fam) and name[len(fam):] in
                TYPE_SUFFIXES.get(types[fam], {""})
            ):
                if family is None or len(fam) > len(family):
                    family, suffix = fam, name[len(fam):]
        if family is None:
            err(f"sample {name!r} has no TYPE declaration")
            continue
        mtype = types[family]
        if suffix not in TYPE_SUFFIXES[mtype]:
            err(f"{name!r}: suffix {suffix!r} not allowed for {mtype}")
        if mtype == "counter" and value < 0:
            err(f"{name!r}: negative counter value {value}")
        if mtype == "summary" and suffix == "" and "quantile" not in labels:
            err(f"{name!r}: summary sample without quantile label")

        if m.group("exemplar"):
            if not (mtype == "histogram" and suffix == "_bucket") and not (
                mtype == "counter"
            ):
                err(f"{name!r}: exemplar on a {mtype}{suffix} sample")
            parse_labels(m.group("exlabels") or "", err)
            try:
                parse_value(m.group("exvalue"))
            except ValueError:
                err(f"bad exemplar value {m.group('exvalue')!r}")

        if mtype == "histogram":
            series = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"))
            key = (family,) + series
            if suffix == "_bucket":
                if "le" not in labels:
                    err(f"{name!r}: histogram bucket without le label")
                else:
                    try:
                        le = parse_value(labels["le"])
                        buckets.setdefault(key, []).append((le, value, ln))
                    except ValueError:
                        err(f"bad le value {labels['le']!r}")
            elif suffix == "_count":
                counts[key] = (value, ln)

    if not eof_seen:
        findings.append("missing terminating # EOF line")

    for key, series in sorted(buckets.items()):
        label = key[0] + "{" + ",".join(f'{k}="{v}"' for k, v in key[1:]) + "}"
        ordered = sorted(series, key=lambda t: t[0])
        prev = -math.inf
        for le, count, ln in ordered:
            if count < prev:
                findings.append(
                    f"line {ln}: {label}: bucket le={le} count {count} "
                    f"below previous bucket ({prev}) — not cumulative")
            prev = count
        infs = [c for le, c, _ in ordered if le == math.inf]
        if not infs:
            findings.append(f"{label}: missing +Inf bucket")
        elif key in counts and infs[-1] != counts[key][0]:
            findings.append(
                f"{label}: +Inf bucket {infs[-1]} != _count "
                f"{counts[key][0]}")

    for want in required_labels:
        if label_hits[want] == 0:
            findings.append(
                f'no sample carries required label "{want}"')

    for prefix in required_prefixes:
        if prefix_families[prefix] == 0:
            findings.append(
                f'no metric family starts with required prefix "{prefix}"')

    for line in findings:
        print(f"openmetrics_lint: {line}")
    if not findings and not quiet:
        extra = "".join(
            f', {label_hits[w]} samples labeled "{w}"'
            for w in required_labels) + "".join(
            f', {prefix_families[p]} families under "{p}"'
            for p in required_prefixes)
        print(f"openmetrics_lint: OK — {len(types)} families, "
              f"{samples} samples, {len(buckets)} histogram series{extra}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
