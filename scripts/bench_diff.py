#!/usr/bin/env python3
"""Compare two bench_wall JSON reports and gate perf regressions.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--fail-threshold=0.15]
                  [--warn-threshold=0.05]

Exit status:
    0 — no gated regression (warnings allowed)
    1 — systems_per_sec at the default thread count regressed by more
        than the fail threshold (default 15%)
    2 — input files missing/malformed

Only the headline systems/sec is a hard gate: per-stage host
milliseconds and the thread-scaling rows are noisy on shared CI runners
(different core counts, neighbours, thermal state), so they are
reported as warnings only. Stdlib-only by design — CI runners have no
extra packages. See docs/PERFORMANCE.md for the update procedure.
"""

import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def rel_change(base, cur):
    """Relative change of `cur` vs `base`; positive = improvement for
    throughput-like metrics."""
    if base is None or cur is None or base == 0:
        return None
    return (cur - base) / base


def fmt_pct(x):
    return f"{x * +100:+.1f}%"


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    opts = dict(
        a.lstrip("-").split("=", 1) for a in argv[1:] if a.startswith("--")
    )
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    fail_threshold = float(opts.get("fail-threshold", 0.15))
    warn_threshold = float(opts.get("warn-threshold", 0.05))

    base = load(args[0])
    cur = load(args[1])

    failed = False

    # --- hard gate: headline throughput ---
    d = rel_change(base.get("systems_per_sec"), cur.get("systems_per_sec"))
    if d is None:
        print("bench_diff: systems_per_sec missing from a report",
              file=sys.stderr)
        return 2
    line = (
        f"systems_per_sec: {base['systems_per_sec']:.0f} -> "
        f"{cur['systems_per_sec']:.0f} ({fmt_pct(d)})"
    )
    if d < -fail_threshold:
        print(f"FAIL  {line}  [gate: -{fail_threshold:.0%}]")
        failed = True
    elif d < -warn_threshold:
        print(f"WARN  {line}")
    else:
        print(f"OK    {line}")

    # --- warn-only metrics (noisy on shared runners) ---
    for key in ("solve_ms", "host_stage1_ms", "host_stage2_ms",
                "host_stage3_ms"):
        b, c = base.get(key), cur.get(key)
        if not b or c is None:
            continue
        d = (c - b) / b  # positive = slower for time-like metrics
        tag = "WARN" if d > warn_threshold else "ok  "
        print(f"{tag}  {key}: {b:.3f} -> {c:.3f} ms ({fmt_pct(d)})")

    # Allocation counts are deterministic — new steady-state allocations
    # mean pooling regressed, but runner-dependent warm-up variation
    # keeps this warn-only too.
    b, c = base.get("host_allocs"), cur.get("host_allocs")
    if b is not None and c is not None and c > b:
        print(f"WARN  host_allocs: {b} -> {c} (pooling regression?)")

    # --- thread scaling (informational) ---
    base_rows = {r["threads"]: r for r in base.get("thread_scaling", [])}
    for row in cur.get("thread_scaling", []):
        t = row["threads"]
        if t in base_rows:
            d = rel_change(base_rows[t].get("systems_per_sec"),
                           row.get("systems_per_sec"))
            if d is not None:
                print(f"info  threads={t}: "
                      f"{base_rows[t]['systems_per_sec']:.0f} -> "
                      f"{row['systems_per_sec']:.0f} ({fmt_pct(d)})")

    if failed:
        print(f"bench_diff: throughput regressed more than "
              f"{fail_threshold:.0%} — failing.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
