#!/usr/bin/env python3
"""Perf gating and cross-commit trend history for the bench reports.

Subcommands:
    compare BASELINE.json CURRENT.json [--fail-threshold=0.15]
        Legacy two-file gate (also invoked when the first argument is a
        file, so `bench_diff.py BASE.json CUR.json` keeps working).

    append CURRENT.json --history=H.jsonl [--commit=SHA] [--label=wall]
           [--max-entries=50]
        Append CURRENT's numeric metrics as one JSONL line to the
        rolling history (committed under bench/history/). Nested
        objects of numbers flatten to dotted keys; non-numeric fields
        are dropped. Oldest lines are trimmed past --max-entries.

    check CURRENT.json --history=H.jsonl [--baseline=B.json]
          [--window=8] [--metric=systems_per_sec]
          [--fail-threshold=0.15] [--warn-threshold=0.05]
        Gate CURRENT against the MEDIAN of the metric over the last
        --window history entries — a rolling baseline that tracks
        gradual runner drift instead of a frozen snapshot. With fewer
        than 2 history entries the check falls back to --baseline
        (when given) or passes with a notice.

    report --history=H.jsonl [--current=C.json] [--out=trend.md]
           [--window=8] [--metric=systems_per_sec]
        Emit a markdown trend table (written to --out, echoed to
        stdout) of the metric across history, with the rolling median
        and the current run's delta against it.

Exit status: 0 = pass (warnings allowed), 1 = gated regression,
2 = missing/malformed input.

Only throughput-like headline metrics are hard gates: per-stage host
milliseconds and thread-scaling rows are noisy on shared CI runners, so
they stay warn-only. Stdlib-only by design — CI runners have no extra
packages. See docs/PERFORMANCE.md for the update procedure.
"""

import json
import os
import statistics
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_history(path):
    """History lines, oldest first; a missing file is an empty history
    (first run on a fresh branch), a malformed line is fatal."""
    if not os.path.exists(path):
        return []
    entries = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError as e:
                    print(f"bench_diff: {path}:{lineno}: bad JSONL: {e}",
                          file=sys.stderr)
                    sys.exit(2)
    except OSError as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return entries


def flatten_numeric(obj, prefix=""):
    """Dotted-key map of every numeric leaf; lists are skipped (the
    thread-scaling rows are runner-shaped, not trendable scalars)."""
    out = {}
    for key, val in obj.items():
        name = f"{prefix}{key}"
        if isinstance(val, bool):
            continue
        if isinstance(val, (int, float)):
            out[name] = val
        elif isinstance(val, dict):
            out.update(flatten_numeric(val, f"{name}."))
    return out


def rel_change(base, cur):
    """Relative change of `cur` vs `base`; positive = improvement for
    throughput-like metrics."""
    if base is None or cur is None or base == 0:
        return None
    return (cur - base) / base


def fmt_pct(x):
    return f"{x * +100:+.1f}%"


def rolling_median(entries, metric, window):
    """Median of `metric` over the last `window` entries that carry it."""
    values = [e["metrics"][metric] for e in entries
              if isinstance(e.get("metrics"), dict)
              and isinstance(e["metrics"].get(metric), (int, float))]
    values = values[-window:]
    if not values:
        return None, 0
    return statistics.median(values), len(values)


def parse_opts(argv):
    args = [a for a in argv if not a.startswith("--")]
    opts = {}
    for a in argv:
        if a.startswith("--"):
            key, _, val = a.lstrip("-").partition("=")
            opts[key] = val if val else "1"
    return args, opts


# --------------------------------------------------------------- compare

def cmd_compare(args, opts):
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    fail_threshold = float(opts.get("fail-threshold", 0.15))
    warn_threshold = float(opts.get("warn-threshold", 0.05))

    base = load(args[0])
    cur = load(args[1])

    failed = False

    # --- hard gate: headline throughput ---
    d = rel_change(base.get("systems_per_sec"), cur.get("systems_per_sec"))
    if d is None:
        print("bench_diff: systems_per_sec missing from a report",
              file=sys.stderr)
        return 2
    line = (
        f"systems_per_sec: {base['systems_per_sec']:.0f} -> "
        f"{cur['systems_per_sec']:.0f} ({fmt_pct(d)})"
    )
    if d < -fail_threshold:
        print(f"FAIL  {line}  [gate: -{fail_threshold:.0%}]")
        failed = True
    elif d < -warn_threshold:
        print(f"WARN  {line}")
    else:
        print(f"OK    {line}")

    # --- warn-only metrics (noisy on shared runners) ---
    for key in ("solve_ms", "host_stage1_ms", "host_stage2_ms",
                "host_stage3_ms"):
        b, c = base.get(key), cur.get(key)
        if not b or c is None:
            continue
        d = (c - b) / b  # positive = slower for time-like metrics
        tag = "WARN" if d > warn_threshold else "ok  "
        print(f"{tag}  {key}: {b:.3f} -> {c:.3f} ms ({fmt_pct(d)})")

    # Allocation counts are deterministic — new steady-state allocations
    # mean pooling regressed, but runner-dependent warm-up variation
    # keeps this warn-only too.
    b, c = base.get("host_allocs"), cur.get("host_allocs")
    if b is not None and c is not None and c > b:
        print(f"WARN  host_allocs: {b} -> {c} (pooling regression?)")

    # --- thread scaling (informational) ---
    base_rows = {r["threads"]: r for r in base.get("thread_scaling", [])}
    for row in cur.get("thread_scaling", []):
        t = row["threads"]
        if t in base_rows:
            d = rel_change(base_rows[t].get("systems_per_sec"),
                           row.get("systems_per_sec"))
            if d is not None:
                print(f"info  threads={t}: "
                      f"{base_rows[t]['systems_per_sec']:.0f} -> "
                      f"{row['systems_per_sec']:.0f} ({fmt_pct(d)})")

    if failed:
        print(f"bench_diff: throughput regressed more than "
              f"{fail_threshold:.0%} — failing.", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------- append

def cmd_append(args, opts):
    if len(args) != 1 or "history" not in opts:
        print("usage: bench_diff.py append CURRENT.json --history=H.jsonl "
              "[--commit=SHA] [--label=NAME] [--max-entries=50]",
              file=sys.stderr)
        return 2
    history_path = opts["history"]
    max_entries = int(opts.get("max-entries", 50))

    metrics = flatten_numeric(load(args[0]))
    if not metrics:
        print(f"bench_diff: {args[0]} has no numeric metrics",
              file=sys.stderr)
        return 2
    entry = {"commit": opts.get("commit", ""), "metrics": metrics}
    if "label" in opts:
        entry["label"] = opts["label"]

    entries = load_history(history_path)
    entries.append(entry)
    entries = entries[-max_entries:]
    d = os.path.dirname(history_path)
    if d:
        os.makedirs(d, exist_ok=True)
    with open(history_path, "w", encoding="utf-8") as f:
        for e in entries:
            f.write(json.dumps(e, sort_keys=True) + "\n")
    print(f"bench_diff: appended {len(metrics)} metrics to {history_path} "
          f"({len(entries)} entries)")
    return 0


# ----------------------------------------------------------------- check

def cmd_check(args, opts):
    if len(args) != 1 or "history" not in opts:
        print("usage: bench_diff.py check CURRENT.json --history=H.jsonl "
              "[--baseline=B.json] [--window=8] [--metric=systems_per_sec] "
              "[--fail-threshold=0.15] [--warn-threshold=0.05]",
              file=sys.stderr)
        return 2
    metric = opts.get("metric", "systems_per_sec")
    window = int(opts.get("window", 8))
    fail_threshold = float(opts.get("fail-threshold", 0.15))
    warn_threshold = float(opts.get("warn-threshold", 0.05))

    cur = flatten_numeric(load(args[0]))
    if metric not in cur:
        print(f"bench_diff: metric {metric} missing from {args[0]}",
              file=sys.stderr)
        return 2

    entries = load_history(opts["history"])
    median, used = rolling_median(entries, metric, window)
    if used < 2:
        # Not enough history for a stable median: fall back to the frozen
        # baseline (legacy gate), or pass with a notice on a fresh branch.
        if "baseline" in opts:
            print(f"bench_diff: history has {used} usable entries "
                  f"(< 2) — falling back to frozen baseline")
            return cmd_compare([opts["baseline"], args[0]], opts)
        print(f"bench_diff: history has {used} usable entries (< 2) and "
              f"no --baseline — passing without a gate")
        return 0

    d = rel_change(median, cur[metric])
    line = (f"{metric}: rolling median({used}) {median:.0f} -> "
            f"{cur[metric]:.0f} ({fmt_pct(d)})")
    if d < -fail_threshold:
        print(f"FAIL  {line}  [gate: -{fail_threshold:.0%}]")
        print(f"bench_diff: {metric} regressed more than "
              f"{fail_threshold:.0%} vs the rolling median — failing.",
              file=sys.stderr)
        return 1
    if d < -warn_threshold:
        print(f"WARN  {line}")
    else:
        print(f"OK    {line}")
    return 0


# ---------------------------------------------------------------- report

def sparkline(values):
    """Text sparkline (pure ASCII fallback-free: these block glyphs are
    fine in GitHub markdown)."""
    bars = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return bars[3] * len(values)
    return "".join(
        bars[int((v - lo) / (hi - lo) * (len(bars) - 1))] for v in values
    )


def cmd_report(args, opts):
    if "history" not in opts:
        print("usage: bench_diff.py report --history=H.jsonl "
              "[--current=C.json] [--out=trend.md] [--window=8] "
              "[--metric=systems_per_sec]", file=sys.stderr)
        return 2
    metric = opts.get("metric", "systems_per_sec")
    window = int(opts.get("window", 8))
    entries = load_history(opts["history"])

    lines = [f"## Perf trend — `{metric}`", ""]
    rows = [(e.get("commit", "")[:10] or "?",
             e["metrics"].get(metric))
            for e in entries if isinstance(e.get("metrics"), dict)]
    rows = [(c, v) for c, v in rows if isinstance(v, (int, float))]
    if not rows:
        lines.append("_history is empty — nothing to report yet._")
    else:
        median, used = rolling_median(entries, metric, window)
        lines.append(f"| commit | {metric} | vs rolling median({used}) |")
        lines.append("|---|---:|---:|")
        for commit, value in rows[-window:]:
            d = rel_change(median, value)
            lines.append(f"| `{commit}` | {value:,.0f} | {fmt_pct(d)} |")
        if "current" in opts:
            cur = flatten_numeric(load(opts["current"]))
            if metric in cur:
                d = rel_change(median, cur[metric])
                lines.append(f"| **current** | **{cur[metric]:,.0f}** | "
                             f"**{fmt_pct(d)}** |")
        lines.append("")
        lines.append(f"Trend (oldest → newest): "
                     f"`{sparkline([v for _, v in rows[-window:]])}`")
    lines.append("")

    text = "\n".join(lines)
    out = opts.get("out", "")
    if out:
        with open(out, "w", encoding="utf-8") as f:
            f.write(text)
    print(text)
    return 0


def main(argv):
    args, opts = parse_opts(argv[1:])
    if args and args[0] == "append":
        return cmd_append(args[1:], opts)
    if args and args[0] == "check":
        return cmd_check(args[1:], opts)
    if args and args[0] == "report":
        return cmd_report(args[1:], opts)
    if args and args[0] == "compare":
        args = args[1:]
    return cmd_compare(args, opts)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
