#!/usr/bin/env python3
"""Verifies the request-tracing invariant on a Chrome-trace export:
every span that carries a trace id is reachable, by walking parent
span ids, from exactly one "request" root span of the same trace —
i.e. each request renders as one coherent tree.

    trace_tree_check.py TRACE.json [--min-traces=1]
                        [--require-spans=batch,solve]

  --min-traces=N       fail unless at least N distinct traces appear
                       (a smoke run that traced nothing is a failure)
  --require-spans=a,b  fail unless each named span kind appears at
                       least once inside some request tree

Exit codes: 0 invariant holds, 1 violations (printed), 2 bad input.
"""

import json
import sys


def main(argv):
    path = None
    min_traces = 1
    require = []
    for arg in argv[1:]:
        if arg.startswith("--min-traces="):
            min_traces = int(arg.split("=", 1)[1])
        elif arg.startswith("--require-spans="):
            require = [s for s in arg.split("=", 1)[1].split(",") if s]
        elif arg.startswith("--"):
            print(f"trace_tree_check: unknown option {arg}")
            return 2
        else:
            path = arg
    if path is None:
        print(__doc__.strip().splitlines()[0])
        return 2

    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"trace_tree_check: cannot load {path}: {exc}")
        return 2

    events = doc.get("traceEvents", [])
    spans = {}  # span_id -> (name, parent_id, trace_id)
    for ev in events:
        args = ev.get("args", {})
        sid = args.get("span_id", "")
        if sid == "":
            continue
        spans[sid] = (ev.get("name", ""), args.get("parent_id", ""),
                      args.get("trace_id", ""))

    findings = []
    roots = {}  # trace_id -> [span_id of "request" roots]
    for sid, (name, _, trace) in spans.items():
        if name == "request":
            if trace == "":
                findings.append(f"request root span {sid} has no trace id")
            else:
                roots.setdefault(trace, []).append(sid)
    for trace, ids in sorted(roots.items()):
        if len(ids) > 1:
            findings.append(
                f"trace {trace}: {len(ids)} request roots ({ids}) — "
                f"expected exactly one")

    traced = 0
    reachable = 0
    seen_names = set()
    for sid, (name, parent, trace) in sorted(spans.items()):
        if trace == "":
            continue
        traced += 1
        # Walk to the root, guarding against dangling links, trace
        # switches mid-chain, and cycles.
        cur, hops = sid, 0
        ok = False
        while hops <= len(spans):
            cname, cparent, ctrace = spans[cur]
            if ctrace != trace:
                findings.append(
                    f"span {sid} ({name}): parent chain crosses from "
                    f"trace {trace} into {ctrace} at span {cur}")
                break
            if cname == "request":
                ok = True
                break
            if cparent == "" or cparent not in spans:
                findings.append(
                    f"span {sid} ({name}, trace {trace}): parent chain "
                    f"dangles at span {cur} (parent {cparent!r})")
                break
            cur = cparent
            hops += 1
        else:
            findings.append(f"span {sid} ({name}): parent cycle")
        if ok:
            reachable += 1
            seen_names.add(name)

    if len(roots) < min_traces:
        findings.append(
            f"only {len(roots)} trace(s) present, need >= {min_traces}")
    for name in require:
        if name not in seen_names:
            findings.append(
                f"required span kind {name!r} never appeared in a tree")

    for line in findings:
        print(f"trace_tree_check: {line}")
    if not findings:
        pct = 100.0 * reachable / traced if traced else 0.0
        print(f"trace_tree_check: OK — {len(roots)} request tree(s), "
              f"{reachable}/{traced} traced spans reachable from their "
              f"root ({pct:.1f}%)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
